"""The recorder seam between instrumented code and observability.

Library code (the engine, the constraint solver, the rewritings) is
instrumented with module-level calls -- ``obs.span(...)``,
``obs.count(...)`` -- that dispatch to whatever recorder is currently
installed.  By default that is :data:`NULL_RECORDER`, whose methods do
nothing and whose span context manager is one shared, reusable object,
so instrumentation left permanently in hot paths costs a single Python
call per site and allocates nothing.

A recorder is anything with the three methods of :class:`NullRecorder`;
the real implementation is :class:`repro.obs.tracer.Tracer`.  Install
one globally with :func:`set_recorder`, or scoped with the
:func:`recording` context manager (which restores the previous recorder
on exit, including on exceptions).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class _NullSpan:
    """The shared do-nothing span: context manager + attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, _name: str, _value: object) -> None:
        """Discard a span attribute."""
        return None

    def add(self, _name: str, _value: int = 1) -> None:
        """Discard a span-local counter increment."""
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: records nothing, as cheaply as possible."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """A no-op span context manager (always the same object)."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """Discard a counter increment."""
        return None

    def record_time(self, name: str, seconds: float) -> None:
        """Discard a timer observation."""
        return None


NULL_RECORDER = NullRecorder()

_recorder = NULL_RECORDER


def get_recorder():
    """The currently installed recorder (the no-op one by default)."""
    return _recorder


def set_recorder(recorder) -> None:
    """Install a recorder globally; ``None`` restores the no-op."""
    global _recorder
    _recorder = NULL_RECORDER if recorder is None else recorder


@contextmanager
def recording(recorder) -> Iterator[object]:
    """Install a recorder for the duration of a ``with`` block."""
    previous = _recorder
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def span(name: str, **attrs: object):
    """Open a span on the installed recorder (no-op by default)."""
    return _recorder.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a named counter on the installed recorder."""
    _recorder.count(name, n)


def counter_add(name: str, n: int) -> None:
    """Alias of :func:`count` that reads better for bulk additions."""
    _recorder.count(name, n)
