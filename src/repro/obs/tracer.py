"""Nested, wall-clock-timed spans: the structured trace of one run.

A :class:`Tracer` is the real implementation of the recorder seam
(:mod:`repro.obs.recorder`).  It keeps a stack of open spans; entering
``obs.span("fixpoint")`` opens a child of the innermost open span, and
``obs.count("constraint.sat_checks")`` lands on both the innermost open
span and the tracer's global :class:`~repro.obs.metrics.MetricsRegistry`.
The resulting tree mirrors the pipeline: parse -> optimize (adorn,
rewrite steps, magic) -> evaluate (normalize, fixpoint, per-iteration,
per-rule) -> answers.

The clock is injectable (defaults to :func:`time.perf_counter`) so
tests can assert exact timings.

Concurrency: one tracer may record from many threads at once (the
serving layer's workers all trace into the session tracer).  Each
thread keeps its *own* span stack -- a worker's first span opens as a
direct child of the root, and its nested spans stay properly nested
within that thread -- while the span tree, the counters, and the
metrics registry are guarded by a single internal lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Callable, Iterator

from repro.obs.metrics import MetricsRegistry


class Span:
    """One timed region of the run, with attributes and counters."""

    __slots__ = ("name", "start", "end", "attrs", "counters", "children")

    def __init__(
        self,
        name: str,
        start: float,
        end: float | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.attrs: dict = attrs or {}
        self.counters: Counter = Counter()
        self.children: list["Span"] = []

    # -- recording (the _NullSpan-compatible surface) -----------------

    def set(self, name: str, value: object) -> None:
        """Attach an attribute to this span."""
        self.attrs[name] = value

    def add(self, name: str, n: int = 1) -> None:
        """Increment a span-local counter."""
        self.counters[name] += n

    # -- inspection ---------------------------------------------------

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (depth, span) pairs over the subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """The first subtree span with the given name (or ``None``)."""
        for __, span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every subtree span with the given name, depth-first."""
        return [span for __, span in self.walk() if span.name == name]

    def subtree_counters(self) -> Counter:
        """This span's counters plus all descendants' (aggregated)."""
        total = Counter()
        for __, span in self.walk():
            total.update(span.counters)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _SpanHandle:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return None


class Tracer:
    """A recorder that builds a span tree and a metrics registry."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry | None = None,
        root_name: str = "run",
    ) -> None:
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.root = Span(root_name, start=clock())
        self._lock = threading.Lock()
        self._local = threading.local()
        self._local.stack = [self.root]

    def _stack(self) -> list[Span]:
        """This thread's span stack (rooted at the shared root)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    # -- the recorder protocol ----------------------------------------

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        """A context manager opening a child of the current span."""
        return _SpanHandle(self, name, attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter on the current span and globally."""
        span = self._stack()[-1]
        with self._lock:
            span.counters[name] += n
            self.metrics.inc(name, n)

    def record_time(self, name: str, seconds: float) -> None:
        """Fold a timing observation into the global registry."""
        with self._lock:
            self.metrics.record_time(name, seconds)

    # -- span-stack plumbing ------------------------------------------

    @property
    def current(self) -> Span:
        """The innermost open span (the root when idle)."""
        return self._stack()[-1]

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(name, start=self._clock(), attrs=dict(attrs))
        stack = self._stack()
        with self._lock:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        # Close any forgotten descendants first so the tree stays
        # well-nested even if an inner handle was abandoned.
        stack = self._stack()
        while len(stack) > 1:
            top = stack.pop()
            top.end = self._clock()
            if top is span:
                return
        raise RuntimeError(f"span {span.name!r} is not open")

    def finish(self) -> Span:
        """Close every open span (root included); returns the root.

        Closes the calling thread's open spans; spans opened by other
        threads are closed by their own context managers.
        """
        now = self._clock()
        stack = self._stack()
        while stack:
            stack.pop().end = now
        self.root.end = now
        stack.append(self.root)
        return self.root
