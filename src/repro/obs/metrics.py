"""Global counters and timers accumulated across a recorded run.

Spans (:mod:`repro.obs.tracer`) answer "where did the time go in *this*
part of the run"; the registry answers "how many of each primitive
operation did the whole run perform" -- the paper's facts-computed /
derivations-made accounting generalized to every instrumented
operation (satisfiability checks, projections, subsumption tests,
join probes, rewrite-fixpoint iterations).
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping


@dataclass
class TimerStat:
    """Accumulated wall-clock of one named operation."""

    total: float = 0.0
    count: int = 0

    def add(self, seconds: float) -> None:
        """Fold one observation in."""
        self.total += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean seconds per observation (0.0 when never observed)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named monotonic counters plus named accumulating timers."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.timers: dict[str, TimerStat] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment a counter."""
        self.counters[name] += n

    def record_time(self, name: str, seconds: float) -> None:
        """Fold one timing observation into a named timer."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStat()
        timer.add(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into a named timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters and timers into this one."""
        self.counters.update(other.counters)
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStat()
            mine.total += stat.total
            mine.count += stat.count

    # -- reporting ----------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data copy (JSON-serializable)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"total_s": stat.total, "count": stat.count}
                for name, stat in sorted(self.timers.items())
            },
        }

    def render(self) -> str:
        """An aligned, human-readable table of counters and timers."""
        lines = []
        if self.counters:
            width = max(len(name) for name in self.counters)
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<{width}}  {value}")
        if self.timers:
            width = max(len(name) for name in self.timers)
            lines.append("timers:")
            for name, stat in sorted(self.timers.items()):
                lines.append(
                    f"  {name:<{width}}  {stat.total * 1e3:9.3f} ms"
                    f"  /{stat.count}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def diff_counters(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Counter deltas between two snapshots (benchmark helper)."""
    keys = set(before) | set(after)
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in sorted(keys)
        if after.get(key, 0) != before.get(key, 0)
    }
