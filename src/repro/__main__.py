"""Command-line interface: ``python -m repro program.cql``.

The file contains CQL rules, ground facts, and one or more queries::

    % flights.cql
    cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    ...
    singleleg(madison, chicago, 50, 100).
    ?- cheaporshort(madison, seattle, T, C).

Options select the optimization strategy (Section 7's vocabulary),
resource budgets (wall-clock deadline, fact/solver/iteration caps with
an ``--on-limit`` degradation policy), and diagnostics (rewritten
program, per-iteration derivation trace, evaluation statistics,
structured traces and metrics).

Exit status (see ``docs/robustness.md`` for the full contract):

* ``0`` -- success: every query answered exactly (or via a sound
  over-approximating fallback, reported as ``approximated``);
* ``1`` -- truncated: an evaluation stopped early (iteration cap or
  resource budget); the partial answers printed are sound but may be
  incomplete, and are labeled ``truncated:<resource>``;
* ``2`` -- unusable input: usage, file, parse, or transform error;
* ``3`` -- hard resource failure: budget exhausted under
  ``--on-limit=fail``, a diverging fixpoint, or an injected fault.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.driver import (
    ON_LIMIT_POLICIES,
    STRATEGY_CHOICES,
    run_text,
)
from repro.errors import ReproError, exit_code_for


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Optimize and evaluate constraint-query-language programs "
            "(Srivastava & Ramakrishnan, 'Pushing Constraint "
            "Selections', PODS 1992)."
        ),
        epilog=(
            "subcommands: 'repro conformance --seed N --count K' runs "
            "the differential conformance harness (docs/testing.md); "
            "'repro serve PROGRAM --workers N' serves batch requests "
            "through a supervised worker pool (docs/serving.md)."
        ),
    )
    parser.add_argument(
        "file",
        help="program file with rules, ground facts and ?- queries "
        "('-' for stdin)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGY_CHOICES,
        default="rewrite",
        help="transformation pipeline to apply (default: rewrite = "
        "the paper's Constraint_rewrite; auto = cost-based planner)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="with --strategy auto, print the planner's full ranking "
        "and chosen plan for each query",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="cap for the constraint-inference fixpoints (default 50)",
    )
    parser.add_argument(
        "--eval-iterations",
        type=int,
        default=None,
        help="cap for the bottom-up evaluation (default 200)",
    )
    governor = parser.add_argument_group(
        "resource governor",
        "budgets for the whole run; when one trips, --on-limit picks "
        "the degradation policy (docs/robustness.md)",
    )
    governor.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for the whole run",
    )
    governor.add_argument(
        "--max-facts",
        type=int,
        metavar="N",
        help="cap on facts stored during evaluation",
    )
    governor.add_argument(
        "--max-solver-calls",
        type=int,
        metavar="N",
        help="cap on constraint-solver calls (variable eliminations)",
    )
    governor.add_argument(
        "--max-rewrite-iterations",
        type=int,
        metavar="N",
        help="budget on constraint-inference fixpoint iterations "
        "(across all rewriting phases; distinct from "
        "--max-iterations, the per-fixpoint divergence cap)",
    )
    governor.add_argument(
        "--on-limit",
        choices=ON_LIMIT_POLICIES,
        default="truncate",
        help="what to do when a budget trips: fail (exit 3), truncate "
        "(keep sound partial results, exit 1), or widen (fall back "
        "to interval-hull widening where possible) "
        "(default: truncate)",
    )
    governor.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject faults at observability sites, e.g. "
        "'delay:evaluate:0.01;fail:rewrite.qrp' "
        "(testing/CI harness; see docs/robustness.md)",
    )
    service = parser.add_argument_group(
        "service mode",
        "long-lived session semantics: the program is compiled once "
        "per query form and the database stays warm across requests "
        "(docs/service.md)",
    )
    service.add_argument(
        "--batch",
        metavar="FILE",
        help="serve a stream of requests from FILE ('-' for stdin): "
        "one query (?- ...) or fact line per input line, one JSON "
        "result per output line; budgets apply per request",
    )
    service.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="capacity of the query-form LRU cache in batch mode "
        "(default 64)",
    )
    parser.add_argument(
        "--show-program",
        action="store_true",
        help="print the optimized program before evaluating",
    )
    parser.add_argument(
        "--derivations",
        action="store_true",
        help="print the per-iteration derivation log",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print evaluation statistics",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured trace of the run and write it as "
        "Chrome trace-event JSON (open in chrome://tracing or "
        "ui.perfetto.dev)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a machine-readable JSON-lines run report "
        "(spans, counters, timers)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the span summary tree and operation counters",
    )
    parser.add_argument(
        "--describe",
        action="store_true",
        help="print the static program analysis (SCCs, range "
        "restriction, inferred constraints) and exit",
    )
    return parser


def _build_budget(arguments):
    """A Budget from the CLI flags, or None when none is set."""
    from repro.governor import Budget

    budget = Budget(
        deadline=arguments.deadline,
        max_facts=arguments.max_facts,
        max_solver_calls=arguments.max_solver_calls,
        max_rewrite_iterations=arguments.max_rewrite_iterations,
    )
    return None if budget.is_unlimited() else budget


def _run_batch_mode(arguments, text: str) -> int:
    """Serve ``--batch`` requests through a long-lived Engine.

    One JSON result per request line on stdout.  Returns 0 when every
    request succeeded completely, 1 when any request errored or
    returned an incomplete answer set -- either way the session
    survives every failure (``docs/service.md``).
    """
    from repro.config import (
        DEFAULT_EVAL_ITERATIONS,
        DEFAULT_REWRITE_ITERATIONS,
    )
    from repro.service import Engine
    from repro.service.batch import run_batch
    from repro.service.cache import DEFAULT_CACHE_SIZE

    engine = Engine.from_text(
        text,
        strategy=arguments.strategy,
        max_iterations=(
            arguments.max_iterations
            if arguments.max_iterations is not None
            else DEFAULT_REWRITE_ITERATIONS
        ),
        eval_iterations=(
            arguments.eval_iterations
            if arguments.eval_iterations is not None
            else DEFAULT_EVAL_ITERATIONS
        ),
        budget=_build_budget(arguments),
        on_limit=arguments.on_limit,
        cache_size=(
            arguments.cache_size
            if arguments.cache_size is not None
            else DEFAULT_CACHE_SIZE
        ),
    )
    if arguments.batch == "-":
        return run_batch(engine, sys.stdin, sys.stdout)
    with open(arguments.batch) as handle:
        return run_batch(engine, handle, sys.stdout)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "conformance":
        from repro.conformance.cli import main as conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    arguments = build_parser().parse_args(argv)
    if arguments.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(arguments.file) as handle:
                text = handle.read()
        except OSError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 2
    if arguments.describe:
        from repro.core.inspect import describe, render_description
        from repro.driver import split_edb
        from repro.lang.parser import parse_program_and_queries

        try:
            program, queries = parse_program_and_queries(text)
        except ValueError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 2
        rules, __ = split_edb(program)
        query_pred = (
            queries[0].literal.pred if queries else None
        )
        print(render_description(describe(rules, query_pred)))
        return 0

    from repro import obs
    from repro.config import (
        DEFAULT_EVAL_ITERATIONS,
        DEFAULT_REWRITE_ITERATIONS,
    )

    observing = bool(
        arguments.trace or arguments.report or arguments.metrics
    )
    tracer = obs.Tracer() if observing else None
    recorder = tracer if tracer is not None else obs.get_recorder()
    if arguments.faults:
        from repro.governor import FaultPlan, FaultyRecorder

        try:
            plan = FaultPlan.from_spec(arguments.faults)
        except ReproError as error:
            print(f"repro: {error}", file=sys.stderr)
            return exit_code_for(error)
        recorder = FaultyRecorder(plan, inner=recorder)
    export_failed = False

    def export():
        nonlocal export_failed
        tracer.finish()
        for path, writer in (
            (arguments.trace, obs.write_chrome_trace),
            (arguments.report, obs.write_run_report),
        ):
            if path:
                try:
                    writer(path, tracer)
                except OSError as error:
                    print(f"repro: {error}", file=sys.stderr)
                    export_failed = True

    outcomes = None
    batch_status = 0
    try:
        with obs.recording(recorder):
            if arguments.batch is not None:
                batch_status = _run_batch_mode(arguments, text)
            else:
                outcomes = run_text(
                    text,
                    strategy=arguments.strategy,
                    max_iterations=(
                        arguments.max_iterations
                        if arguments.max_iterations is not None
                        else DEFAULT_REWRITE_ITERATIONS
                    ),
                    eval_iterations=(
                        arguments.eval_iterations
                        if arguments.eval_iterations is not None
                        else DEFAULT_EVAL_ITERATIONS
                    ),
                    budget=_build_budget(arguments),
                    on_limit=arguments.on_limit,
                )
    except OSError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"repro: [{error.code}] {error}", file=sys.stderr)
        return exit_code_for(error)
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    finally:
        # Export whatever was recorded even when the run failed, so a
        # partial trace is still inspectable.
        if tracer is not None:
            export()
    status = batch_status
    for outcome in outcomes or ():
        print(f"?- {outcome.query.literal}.")
        if arguments.show_program:
            print("-- optimized program "
                  f"(strategy={outcome.strategy}) --")
            print(outcome.program)
            print("--")
        if arguments.derivations:
            print(outcome.result.trace())
        if arguments.explain:
            if outcome.plan is not None:
                print(outcome.plan.explain())
            else:
                print(
                    "note: --explain shows a plan only with "
                    "--strategy auto",
                    file=sys.stderr,
                )
        for note in outcome.notes:
            print(f"note: {note}", file=sys.stderr)
        if outcome.answers:
            for answer in outcome.answer_strings:
                print(f"  {answer}")
        else:
            print("  no")
        if outcome.completeness != "complete":
            print(f"  completeness: {outcome.completeness}")
        if arguments.stats:
            print(f"  [{outcome.result.stats.summary()}]")
        if not outcome.result.reached_fixpoint:
            status = 1
    if arguments.metrics and tracer is not None:
        print()
        print(obs.summary_tree(tracer, max_depth=4))
    if export_failed:
        return 2
    if arguments.trace:
        print(f"trace written to {arguments.trace}", file=sys.stderr)
    if arguments.report:
        print(f"report written to {arguments.report}", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
