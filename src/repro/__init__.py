"""repro: a reproduction of *Pushing Constraint Selections*.

Srivastava & Ramakrishnan, PODS 1992 (full version JLP 16:361-414, 1993).

The library optimizes constraint-query-language (CQL) programs --
Datalog with linear arithmetic constraints in rule bodies -- by pushing
constraint selections through rules so that bottom-up evaluation
computes only query-relevant facts, and by combining that with Magic
Templates in the provably-optimal order.

Quick tour::

    from repro import parse_program, constraint_rewrite, evaluate, Database

    program = parse_program('''
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
    ''')
    rewritten = constraint_rewrite(program, "q").program
    result = evaluate(rewritten, Database.from_ground({
        "b1": [(2, 3), (9, 9)], "b2": [(3,), (9,)],
    }))
    print(result.facts("q"))

Subpackages: :mod:`repro.constraints` (exact linear-arithmetic solver),
:mod:`repro.lang` (CQL AST + parser), :mod:`repro.engine` (bottom-up
fixpoint over constraint facts), :mod:`repro.transform` (fold/unfold),
:mod:`repro.magic` (Magic Templates, constraint magic, GMT),
:mod:`repro.core` (the paper's rewriting procedures),
:mod:`repro.workloads` (synthetic EDB generators).
"""

from repro.constraints import (
    Atom,
    Conjunction,
    ConstraintSet,
    LinearExpr,
    Op,
)
from repro.core.pipeline import (
    apply_sequence,
    compare_sequences,
    evaluate_pipeline,
)
from repro.core.predconstraints import (
    gen_predicate_constraints,
    gen_prop_predicate_constraints,
    is_predicate_constraint,
)
from repro.core.qrp import gen_prop_qrp_constraints, gen_qrp_constraints
from repro.core.rewrite import RewriteResult, constraint_rewrite
from repro.engine import Database, EvaluationResult, evaluate
from repro.engine.query import answers
from repro.lang import (
    Literal,
    Program,
    Query,
    Rule,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.core.inspect import describe, render_description
from repro.core.relevance import relevance_ratio, relevance_report
from repro.engine.provenance import derivation_tree, explain
from repro.engine.report import (
    render_comparison,
    render_derivation_table,
)
from repro.core.widening import (
    gen_predicate_constraints_widened,
    gen_prop_predicate_constraints_widened,
)
from repro import obs
from repro.driver import answer_query, optimize, run_text
from repro.errors import BudgetExceeded, ReproError, UsageError
from repro.governor import Budget
from repro.magic.bcf import bcf_adorn
from repro.magic.gmt import gmt_transform
from repro.magic.templates import (
    constraint_magic,
    magic_rewrite,
    magic_templates_full,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Conjunction",
    "ConstraintSet",
    "LinearExpr",
    "Op",
    "Literal",
    "Program",
    "Query",
    "Rule",
    "parse_program",
    "parse_query",
    "parse_rule",
    "Database",
    "evaluate",
    "EvaluationResult",
    "answers",
    "constraint_rewrite",
    "RewriteResult",
    "gen_predicate_constraints",
    "gen_prop_predicate_constraints",
    "is_predicate_constraint",
    "gen_qrp_constraints",
    "gen_prop_qrp_constraints",
    "magic_templates_full",
    "constraint_magic",
    "magic_rewrite",
    "apply_sequence",
    "evaluate_pipeline",
    "compare_sequences",
    "relevance_report",
    "relevance_ratio",
    "gen_predicate_constraints_widened",
    "gen_prop_predicate_constraints_widened",
    "answer_query",
    "optimize",
    "run_text",
    "Budget",
    "BudgetExceeded",
    "ReproError",
    "UsageError",
    "bcf_adorn",
    "gmt_transform",
    "describe",
    "render_description",
    "derivation_tree",
    "explain",
    "render_derivation_table",
    "render_comparison",
    "obs",
]
