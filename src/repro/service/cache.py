"""A bounded LRU cache of compiled query forms.

One entry per :class:`~repro.service.forms.QueryForm` holds the
compiled (seed-less) program template plus the form's warm evaluated
database, when one exists.  Eviction drops both -- the warm database is
only reachable through its form's entry, so LRU order doubles as the
warm-state retention policy.

Counters: ``service.cache_hits`` / ``service.cache_misses`` on lookup,
``service.cache_evictions`` when capacity forces an entry out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.obs.recorder import count as obs_count
from repro.service.forms import QueryForm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.session import CompiledForm, WarmState

DEFAULT_CACHE_SIZE = 64

#: Warm databases kept per form.  Seed-less strategies only ever need
#: one (their evaluated database is constant-independent); the magic
#: strategies get one per recently seen seed, so a rotation of popular
#: constants stays warm without unbounded retention.
MAX_WARM_PER_ENTRY = 8


@dataclass
class CacheEntry:
    """A cached compiled form plus its warm evaluation states.

    ``warm_states`` maps the specialized seed rule (``None`` for the
    seed-less strategies) to the :class:`WarmState` evaluated with it,
    in LRU order, capped at :data:`MAX_WARM_PER_ENTRY`.

    ``lock`` serializes *evaluation* against this entry: concurrent
    requests for the same form take it around their warm-state lookup,
    (re-)evaluation, and answer extraction, so two threads can never
    resume the same warm database at once (requests for different
    forms proceed in parallel).
    """

    compiled: "CompiledForm"
    warm_states: "OrderedDict[object, WarmState]" = field(
        default_factory=OrderedDict
    )
    hits: int = field(default=0)
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: The adaptive planner's per-form cost record
    #: (:class:`repro.planner.adaptive.PlanRecord`), when the session
    #: runs with the ``auto`` strategy.
    plan_record: object = field(
        default=None, repr=False, compare=False
    )

    def get_warm(self, seed: object) -> "WarmState | None":
        """The warm state for a seed, refreshing its recency."""
        state = self.warm_states.get(seed)
        if state is not None:
            self.warm_states.move_to_end(seed)
        return state

    def put_warm(self, seed: object, state: "WarmState") -> None:
        """Store a seed's warm state, evicting the LRU beyond the cap."""
        self.warm_states[seed] = state
        self.warm_states.move_to_end(seed)
        while len(self.warm_states) > MAX_WARM_PER_ENTRY:
            self.warm_states.popitem(last=False)

    def drop_warm(self, seed: object) -> None:
        """Forget a seed's warm state (e.g. after a truncated resume)."""
        self.warm_states.pop(seed, None)


class FormCache:
    """Least-recently-used mapping from query forms to cache entries."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[QueryForm, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, form: QueryForm) -> bool:
        return form in self._entries

    def entries(self) -> Iterator[CacheEntry]:
        """The live entries, least recently used first."""
        return iter(self._entries.values())

    def peek(self, form: QueryForm) -> CacheEntry | None:
        """Look a form up without touching recency or hit/miss counts.

        The double-checked re-lookup of the session's compile
        single-flight: a request that lost the compile race must find
        the winner's entry without double-counting the miss.
        """
        return self._entries.get(form)

    def get(self, form: QueryForm) -> CacheEntry | None:
        """Look a form up, refreshing its recency; counts hit/miss."""
        entry = self._entries.get(form)
        if entry is None:
            self.misses += 1
            obs_count("service.cache_misses")
            return None
        self._entries.move_to_end(form)
        entry.hits += 1
        self.hits += 1
        obs_count("service.cache_hits")
        return entry

    def put(self, form: QueryForm, compiled: "CompiledForm") -> CacheEntry:
        """Insert a freshly compiled form, evicting the LRU if full."""
        entry = CacheEntry(compiled)
        self._entries[form] = entry
        self._entries.move_to_end(form)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs_count("service.cache_evictions")
        return entry

    def min_warm_epoch(self, default: int) -> int:
        """The oldest fact epoch any warm state still needs."""
        epochs = [
            state.epoch
            for entry in self._entries.values()
            for state in entry.warm_states.values()
        ]
        return min(epochs, default=default)

    def stats(self) -> dict:
        """Counters and occupancy for :meth:`Engine.stats`."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "warm_states": sum(
                len(entry.warm_states)
                for entry in self._entries.values()
            ),
        }
