"""The ``--batch`` line protocol: stream requests, one JSON result each.

Input lines:

* blank lines and lines starting with ``%`` or ``#`` are skipped;
* a line starting with ``?-`` is a query;
* any other line is one or more ground facts (``edge(a, b, 3).``).

Each processed line yields exactly one JSON object on its own output
line (the rendering of :meth:`repro.service.session.Response.to_dict`)::

    {"type": "answers", "query": "...", "answers": [...],
     "completeness": "complete", "cached": true, "warm": true}
    {"type": "facts", "added": 2}
    {"type": "error", "code": "REPRO_PARSE", "message": "..."}

Errors never stop the stream -- the session survives and later lines
still run.  :func:`run_batch` returns the CLI exit status: ``0`` when
every request succeeded, ``1`` when any request errored or returned a
truncated answer set.  An ``approximated`` answer under an explicitly
requested ``--on-limit widen`` policy is the *expected* degraded
outcome -- the caller asked for sound over-approximation as the
fallback -- so it exits 0; under any other policy it still exits 1.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, TYPE_CHECKING

from repro.service.session import Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.engine import Engine


def process_line(engine: "Engine", line: str) -> Response | None:
    """Dispatch one batch line; ``None`` for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith(("%", "#")):
        return None
    if stripped.startswith("?-"):
        return engine.query(stripped)
    return engine.add_facts(stripped)


def degraded_status(response: Response, on_limit: str) -> int:
    """The exit-status contribution of one response (0 or 1).

    Errors and truncations always count as failures; an
    ``approximated`` answer counts only when the session policy is not
    ``widen`` (under ``widen`` the caller explicitly requested the
    approximation as the degraded outcome).
    """
    if not response.ok:
        return 1
    if response.kind != "answers":
        return 0
    if response.completeness.startswith("truncated"):
        return 1
    if response.completeness == "approximated" and on_limit != "widen":
        return 1
    return 0


def run_batch(
    engine: "Engine",
    lines: Iterable[str],
    out: IO[str],
) -> int:
    """Stream every line through the engine, printing JSON results."""
    status = 0
    on_limit = engine.session.on_limit
    for response in engine.batch(lines):
        print(json.dumps(response.to_dict()), file=out, flush=True)
        status |= degraded_status(response, on_limit)
    return status
