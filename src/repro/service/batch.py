"""The ``--batch`` line protocol: stream requests, one JSON result each.

Input lines:

* blank lines and lines starting with ``%`` or ``#`` are skipped;
* a line starting with ``?-`` is a query;
* any other line is one or more ground facts (``edge(a, b, 3).``).

Each processed line yields exactly one JSON object on its own output
line (the rendering of :meth:`repro.service.session.Response.to_dict`)::

    {"type": "answers", "query": "...", "answers": [...],
     "completeness": "complete", "cached": true, "warm": true}
    {"type": "facts", "added": 2}
    {"type": "error", "code": "REPRO_PARSE", "message": "..."}

Errors never stop the stream -- the session survives and later lines
still run.  :func:`run_batch` returns the CLI exit status: ``0`` when
every request succeeded completely, ``1`` when any request errored or
returned a truncated/approximated answer set.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, TYPE_CHECKING

from repro.service.session import Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.engine import Engine


def process_line(engine: "Engine", line: str) -> Response | None:
    """Dispatch one batch line; ``None`` for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith(("%", "#")):
        return None
    if stripped.startswith("?-"):
        return engine.query(stripped)
    return engine.add_facts(stripped)


def run_batch(
    engine: "Engine",
    lines: Iterable[str],
    out: IO[str],
) -> int:
    """Stream every line through the engine, printing JSON results."""
    status = 0
    for response in engine.batch(lines):
        print(json.dumps(response.to_dict()), file=out, flush=True)
        if not response.ok or (
            response.kind == "answers"
            and response.completeness != "complete"
        ):
            status = 1
    return status
