"""Sessions: warm databases, per-request budgets, error isolation.

A :class:`Session` is the long-lived core of the service.  It parses
and splits a program **once**, then answers any number of queries and
fact loads against the same state:

* Each query is canonicalized to a :class:`~repro.service.forms.QueryForm`
  and compiled at most once per form (LRU-bounded).  For the magic
  strategies the cached artifact is the *seed-less* template; the seed
  fact -- the only place query constants appear (Appendix B builds it
  as a runtime fact) -- is rebuilt from the actual call by
  :meth:`CompiledForm.specialize`.  The constraint-propagation
  strategies depend only on the query predicate, so their cached
  program is reused verbatim.
* The first evaluation of a form leaves a **warm**
  :class:`WarmState` -- the evaluated database and its final iteration
  stamp.  A repeat query with the same seed answers straight from the
  warm database; new EDB facts are folded in incrementally with
  :func:`repro.engine.fixpoint.resume`, re-seeding the semi-naive delta
  instead of recomputing from scratch (sound for these negation-free
  programs).  Truncated (budget-cut) evaluations are *never* kept warm,
  and degraded (fallback) compiles are never cached: cached state must
  reproduce exactly what a cold run would.
* Every request runs under its own fresh budget meter (from the
  session's :class:`~repro.governor.Budget` spec) and every failure is
  converted to an error :class:`Response` carrying the ``REPRO_*``
  code -- one pathological request cannot take the session down.
* The session is **thread-safe** under a reader-writer discipline
  (:class:`~repro.service.sync.RWLock`): any number of queries run
  concurrently, while :meth:`add_facts` epochs are exclusive, so a
  query always sees a consistent EDB + fact-log state.  Within the
  concurrent-query side, form compiles are single-flight (the first
  request compiles, racers wait and reuse) and evaluation against one
  cache entry is serialized by the entry's lock, so two threads never
  resume the same warm database at once.  The supervisor
  (:mod:`repro.serve`) builds its worker pool directly on these
  guarantees.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from typing import Iterable

from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
)
from repro.driver import (
    AUTO_STRATEGY,
    ON_LIMIT_POLICIES,
    optimize,
    render_answers,
    split_edb,
    validate_strategy,
)
from repro.engine import Database, EvaluationResult, evaluate, resume
from repro.engine.facts import Fact
from repro.engine.query import answers as raw_answers
from repro.errors import BudgetExceeded, ReproError, UsageError
from repro.governor import Budget, BudgetMeter
from repro.governor import budget as governor
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.normalize import normalize_query
from repro.obs.recorder import count as obs_count, span as obs_span
from repro.service.cache import (
    CacheEntry,
    DEFAULT_CACHE_SIZE,
    FormCache,
)
from repro.service.forms import QueryForm, canonicalize
from repro.service.sync import RWLock


@dataclass
class CompiledForm:
    """The reusable optimization artifact of one query form.

    ``template`` is the optimized program with the magic seed (if any)
    stripped; ``seed_pred`` names the magic predicate the seed must
    define, or ``None`` for the seed-less strategies.  ``cacheable`` is
    False when the compile degraded (budget fallbacks): a degraded
    rewrite is specific to the budget weather it was compiled under,
    so it serves this request only.
    """

    form: QueryForm
    template: Program
    query_pred: str
    seed_pred: str | None
    strategy: str
    notes: list[str] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)

    @property
    def cacheable(self) -> bool:
        """Safe to reuse for other instances of the form?"""
        return not self.fallbacks

    def specialize(self, query: Query) -> tuple[Program, Rule | None]:
        """The template specialized with the call's constants.

        Rebuilds the magic seed exactly as
        :func:`repro.magic.templates.constraint_magic` would for this
        query: the normalized query literal's arguments at the bound
        (per the form's adornment) positions, under the normalized
        query constraint.  Positional reconstruction -- never
        value-based substitution -- so repeated or colliding constants
        cannot mis-bind.
        """
        if self.seed_pred is None:
            return self.template, None
        normalized = normalize_query(query)
        seed_args = tuple(
            normalized.literal.args[position]
            for position, letter in enumerate(self.form.adornment)
            if letter == "b"
        )
        seed = Rule(
            Literal(self.seed_pred, seed_args),
            (),
            normalized.constraint,
            label="seed",
        )
        return self.template.with_rules([seed]), seed


@dataclass
class PreparedQuery:
    """A query compiled and specialized, evaluation left to the caller.

    What :meth:`Session.prepare` returns: the shard worker
    (:mod:`repro.shard.worker`) uses the session's compile-once cache
    and seed specialization but drives the fixpoint itself, one
    exchange round at a time, so the evaluation can be interleaved
    with remote shards' deltas.  ``specialized`` is the optimized
    program with the magic seed (if any) re-attached for this call's
    constants; ``seed`` identifies the warm slot the evaluation may be
    cached under.
    """

    form: QueryForm
    params: tuple[str, ...]
    compiled: CompiledForm
    specialized: Program
    seed: Rule | None
    cached: bool


@dataclass
class WarmState:
    """A form's evaluated database, reusable across requests.

    ``last_stamp`` is the highest iteration stamp stored, so the next
    incremental load enters at ``last_stamp + 1``; ``epoch`` is the
    session fact epoch the database is current to; ``seed`` is the
    specialized seed evaluated with (``None`` for seed-less
    strategies) -- a request with a different seed cannot reuse the
    state.
    """

    database: Database
    last_stamp: int
    epoch: int
    seed: Rule | None


@dataclass
class Response:
    """What one service request produced (always returned, never raised).

    ``kind`` is ``"answers"`` (a query), ``"facts"`` (a fact load), or
    ``"error"``.  ``cached`` reports a form-cache hit, ``warm`` that
    the answer came from a warm database (``resumed`` when new facts
    were folded in incrementally first).  ``completeness`` follows the
    driver vocabulary (``complete`` / ``approximated`` /
    ``truncated:<resource>``).
    """

    kind: str
    query: Query | None = None
    answers: list[Fact] = field(default_factory=list)
    completeness: str = "complete"
    form: str | None = None
    params: tuple[str, ...] = ()
    cached: bool = False
    warm: bool = False
    resumed: bool = False
    added: int = 0
    #: For ``"facts"`` responses: the facts that were actually new --
    #: what a write-ahead fact log must record for crash-safe replay
    #: (see :mod:`repro.serve.snapshot`) -- and the epoch the load was
    #: assigned (recorded inside the exclusive section, so concurrent
    #: loads cannot mislabel each other's log entries).
    loaded: tuple = ()
    epoch: int = 0
    notes: list[str] = field(default_factory=list)
    error_code: str | None = None
    error_message: str | None = None
    budget: dict | None = None
    #: The raw :class:`~repro.engine.EvalStats` of the evaluation that
    #: produced the answer (``None`` on a warm hit -- nothing was
    #: evaluated).  Feeds the adaptive planner's observed-cost loop.
    eval_stats: object = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Did the request succeed (possibly degraded)?"""
        return self.kind != "error"

    @property
    def answer_strings(self) -> list[str]:
        """Answers rendered as query-variable bindings."""
        if self.query is None:
            return []
        return render_answers(self.query, self.answers)

    def to_dict(self) -> dict:
        """The JSON-ready batch-protocol rendering."""
        if self.kind == "error":
            payload: dict = {
                "type": "error",
                "code": self.error_code,
                "message": self.error_message,
            }
            if self.query is not None:
                payload["query"] = str(self.query)
            return payload
        if self.kind == "facts":
            return {"type": "facts", "added": self.added}
        payload = {
            "type": "answers",
            "query": str(self.query),
            "answers": self.answer_strings,
            "completeness": self.completeness,
            "cached": self.cached,
            "warm": self.warm,
        }
        if self.resumed:
            payload["resumed"] = True
        if self.notes:
            payload["notes"] = list(self.notes)
        return payload


class Session:
    """A compile-once, warm-database query session over one program."""

    def __init__(
        self,
        program: Program,
        strategy: str = "rewrite",
        max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
        eval_iterations: int = DEFAULT_EVAL_ITERATIONS,
        budget: Budget | None = None,
        on_limit: str = "truncate",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        validate_strategy(strategy, allow_auto=True)
        if on_limit not in ON_LIMIT_POLICIES:
            raise UsageError(
                f"unknown on_limit policy {on_limit!r}; "
                f"choose from {ON_LIMIT_POLICIES}"
            )
        with obs_span("service.load"):
            self._rules, self._edb = split_edb(program)
        self._derived = self._rules.derived_predicates()
        self._strategy = strategy
        if strategy == AUTO_STRATEGY:
            from repro.planner import AdaptivePlanner

            self._planner = AdaptivePlanner(self._rules, self._edb)
        else:
            self._planner = None
        self._max_iterations = max_iterations
        self._eval_iterations = eval_iterations
        self._budget = budget
        self._on_limit = on_limit
        self._cache = FormCache(cache_size)
        self._epoch = 0
        self._fact_log: list[tuple[int, list[Fact]]] = []
        self.requests = 0
        self.errors = 0
        # Concurrency discipline: queries share, fact loads exclude
        # (module docstring).  ``_mutex`` guards the form cache, the
        # compile-lock table, and the request/error counters;
        # ``_compile_locks`` makes form compiles single-flight.
        self._rw = RWLock()
        self._mutex = threading.Lock()
        self._compile_locks: dict[QueryForm, threading.Lock] = {}

    # -- the two request kinds ----------------------------------------

    def query(self, query: Query) -> Response:
        """Answer one query; failures come back as error responses.

        Runs in the lock's *shared* mode: concurrent queries proceed
        together, but never overlap a fact-load epoch.
        """
        with self._mutex:
            self.requests += 1
        obs_count("service.requests")
        with self._rw.read_locked(), obs_span(
            "service.request", kind="query", pred=query.literal.pred
        ) as request_span:
            meter = (
                self._budget.meter() if self._budget is not None else None
            )
            try:
                with (
                    governor.governed(meter)
                    if meter is not None else _nullcontext()
                ):
                    response = self._answer(query, meter)
            except ReproError as error:
                response = self._error_response(error, query)
            except ValueError as error:
                response = self._error_response(
                    UsageError(str(error)), query
                )
            if meter is not None:
                response.budget = meter.snapshot()
            request_span.set("ok", response.ok)
            if response.error_code:
                request_span.set("error", response.error_code)
            return response

    def add_facts(self, facts: Iterable[Fact]) -> Response:
        """Load new EDB facts; they reach warm databases incrementally.

        Facts for derived (IDB) predicates are rejected: injecting
        them would silently change the program's semantics rather than
        its database.  Returns how many facts were actually new (not
        duplicates or subsumed).

        Runs in the lock's *exclusive* mode: the epoch bump, the EDB
        mutation, and the fact-log append are atomic with respect to
        every concurrent query.
        """
        with self._mutex:
            self.requests += 1
        obs_count("service.requests")
        with self._rw.write_locked(), obs_span(
            "service.request", kind="add_facts"
        ) as request_span:
            try:
                batch = list(facts)
                for fact in batch:
                    if fact.pred in self._derived:
                        raise UsageError(
                            f"cannot add facts for derived predicate "
                            f"{fact.pred!r}"
                        )
                self._trim_fact_log()
                added = self._edb.insert_many(batch)
            except ReproError as error:
                return self._error_response(error)
            except ValueError as error:
                return self._error_response(UsageError(str(error)))
            if added:
                self._epoch += 1
                self._fact_log.append((self._epoch, added))
                if self._planner is not None:
                    self._planner.note_facts(len(added))
            obs_count("service.facts_added", len(added))
            request_span.set("added", len(added))
            return Response(
                kind="facts",
                added=len(added),
                loaded=tuple(added),
                epoch=self._epoch,
            )

    # -- request internals --------------------------------------------

    def _error_response(
        self, error: ReproError, query: Query | None = None
    ) -> Response:
        with self._mutex:
            self.errors += 1
        obs_count("service.errors")
        return Response(
            kind="error",
            query=query,
            error_code=error.code,
            error_message=str(error),
        )

    def _compile_lock(self, form: QueryForm) -> threading.Lock:
        """The single-flight lock for one form's compile."""
        with self._mutex:
            if len(self._compile_locks) > max(
                1024, 4 * self._cache.capacity
            ):
                # Evicted forms leave dead locks behind; dropping the
                # table is safe (its absence only risks a duplicate
                # compile, never a wrong answer).
                self._compile_locks.clear()
            return self._compile_locks.setdefault(
                form, threading.Lock()
            )

    def _lookup_or_compile(
        self, query: Query, form: QueryForm, strategy: str
    ) -> tuple[CacheEntry, bool]:
        """The form's cache entry, compiling at most once per form.

        Concurrent first requests for one form are single-flight: the
        race winner compiles while the others wait on the form's lock
        and then reuse the cached artifact.  An entry compiled under a
        different strategy (the adaptive planner switched) is replaced
        the same single-flight way.
        """
        with self._mutex:
            entry = self._cache.get(form)
        if entry is not None and entry.compiled.strategy == strategy:
            return entry, True
        with self._compile_lock(form):
            with self._mutex:
                entry = self._cache.peek(form)
            if (
                entry is not None
                and entry.compiled.strategy == strategy
            ):
                return entry, True  # a racer compiled it first
            compiled = self._compile(query, form, strategy)
            if compiled.cacheable:
                with self._mutex:
                    entry = self._cache.put(form, compiled)
            else:
                entry = CacheEntry(compiled)  # serve-once, never stored
            return entry, False

    def _answer(
        self, query: Query, meter: BudgetMeter | None
    ) -> Response:
        form, params = canonicalize(query)
        strategy = self._strategy
        form_key = None
        if self._planner is not None:
            # Planner state has its own lock; safe under the shared
            # (reader) side of the session's RW discipline.
            form_key = str(form)
            strategy = self._planner.decide(form_key, query)
        entry, cached = self._lookup_or_compile(query, form, strategy)
        compiled = entry.compiled
        specialized, seed = compiled.specialize(query)
        # Evaluation against one entry is serialized by its lock, so a
        # warm database is never resumed by two threads at once;
        # different forms evaluate in parallel.
        started = time.perf_counter()
        with entry.lock:
            response = self._evaluate_entry(
                query, form, params, entry, compiled, specialized,
                seed, cached, meter,
            )
        if self._planner is not None:
            # The first run after a (re)compile pays the compile bill;
            # the planner records it but keeps it out of warm means.
            entry.plan_record = self._planner.observe(
                form_key,
                strategy,
                response.eval_stats,
                time.perf_counter() - started,
                cold=not cached,
            )
        return response

    def _evaluate_entry(
        self,
        query: Query,
        form: QueryForm,
        params: tuple[str, ...],
        entry: CacheEntry,
        compiled: CompiledForm,
        specialized: Program,
        seed: Rule | None,
        cached: bool,
        meter: BudgetMeter | None,
    ) -> Response:
        # Warm states are keyed by the specialized seed: a different
        # seed (new constants under a magic strategy) answers a
        # different selection, so it gets its own warm slot.
        warm = entry.get_warm(seed)
        resumed = False
        if warm is None:
            with obs_span("service.evaluate", mode="cold"):
                result = evaluate(
                    specialized,
                    self._edb,
                    max_iterations=self._eval_iterations,
                    budget=meter,
                )
            database = result.database
            if not result.truncated and compiled.cacheable:
                entry.put_warm(seed, WarmState(
                    database=database,
                    last_stamp=result.stats.iterations,
                    epoch=self._epoch,
                    seed=seed,
                ))
        elif warm.epoch < self._epoch:
            # Fold the facts loaded since the warm state was current
            # into it as the semi-naive delta, then continue to the new
            # fixpoint -- nothing already derived is recomputed.
            pending = [
                fact
                for epoch, facts in self._fact_log
                if epoch > warm.epoch
                for fact in facts
            ]
            start_stamp = warm.last_stamp + 1
            with obs_span(
                "service.evaluate", mode="resume", delta=len(pending)
            ):
                result = resume(
                    specialized,
                    warm.database,
                    pending,
                    start_stamp=start_stamp,
                    max_iterations=self._eval_iterations,
                    budget=meter,
                )
            obs_count("service.resumes")
            resumed = True
            database = warm.database
            if result.truncated:
                # The warm database now holds a partial delta closure;
                # serve the (sound, possibly incomplete) answer but
                # never reuse the poisoned state.
                entry.drop_warm(seed)
            else:
                warm.last_stamp = start_stamp + result.stats.iterations
                warm.epoch = self._epoch
        else:
            obs_count("service.warm_hits")
            result = None
            database = warm.database
        truncated = result is not None and result.truncated
        if (
            truncated
            and self._on_limit == "fail"
            and meter is not None
            and meter.exhausted is not None
        ):
            raise BudgetExceeded(
                meter.exhausted, phase="evaluate", partial=result
            )
        effective_query = Query(
            query.literal.with_pred(compiled.query_pred),
            query.constraint,
        )
        # Answer extraction renders existing state; it must not be
        # vetoed by an already-blown budget.
        with (
            meter.paused() if meter is not None else _nullcontext()
        ):
            with obs_span("answers"):
                found = raw_answers(database, effective_query)
        if truncated:
            completeness = result.completeness
        elif compiled.fallbacks:
            completeness = "approximated"
        else:
            completeness = "complete"
        return Response(
            kind="answers",
            query=query,
            answers=found,
            completeness=completeness,
            form=str(form),
            params=params,
            cached=cached,
            warm=warm is not None,
            resumed=resumed,
            notes=list(compiled.notes),
            eval_stats=result.stats if result is not None else None,
        )

    def _compile(
        self, query: Query, form: QueryForm, strategy: str
    ) -> CompiledForm:
        """Run the strategy's rewrite once for this form."""
        obs_count("service.form_compiles")
        notes: list[str] = []
        fallbacks: list[str] = []
        try:
            with obs_span(
                "service.compile",
                form=str(form),
                strategy=strategy,
            ):
                optimized, query_pred, notes = optimize(
                    self._rules,
                    query,
                    strategy,
                    self._max_iterations,
                    fallbacks,
                    self._on_limit,
                )
        except BudgetExceeded as error:
            if self._on_limit == "fail":
                raise
            # Skipping optimization is sound (the rewritings only
            # prune); evaluate the program as written.
            optimized, query_pred = self._rules, query.literal.pred
            notes = [
                f"optimization budget exhausted ({error.resource}); "
                "evaluating the program as written"
            ]
            fallbacks = ["optimize:skipped"]
        seed_rule = next(
            (rule for rule in optimized if rule.label == "seed"), None
        )
        if seed_rule is not None:
            template = Program(
                rule for rule in optimized if rule != seed_rule
            )
            seed_pred = seed_rule.head.pred
        else:
            template, seed_pred = optimized, None
        return CompiledForm(
            form=form,
            template=template,
            query_pred=query_pred,
            seed_pred=seed_pred,
            strategy=strategy,
            notes=notes,
            fallbacks=fallbacks,
        )

    def _trim_fact_log(self) -> None:
        """Drop log segments no warm state can still need."""
        floor = self._cache.min_warm_epoch(default=self._epoch)
        self._fact_log = [
            (epoch, facts)
            for epoch, facts in self._fact_log
            if epoch > floor
        ]

    # -- sharded evaluation hook (see repro.shard.worker) -------------

    def prepare(self, query: Query) -> PreparedQuery:
        """Compile and specialize a query without evaluating it.

        Same single-flight form cache as :meth:`query` (a repeat call
        for the form reuses the compiled template), but evaluation is
        the caller's job -- the sharded worker steps the fixpoint in
        exchange rounds instead of running it to completion locally.
        Raises :class:`~repro.errors.ReproError` on compile failures;
        the caller owns the error-to-response conversion.
        """
        form, params = canonicalize(query)
        strategy = self._strategy
        if self._planner is not None:
            strategy = self._planner.decide(str(form), query)
        entry, cached = self._lookup_or_compile(query, form, strategy)
        compiled = entry.compiled
        specialized, seed = compiled.specialize(query)
        return PreparedQuery(
            form=form,
            params=params,
            compiled=compiled,
            specialized=specialized,
            seed=seed,
            cached=cached,
        )

    # -- snapshot hooks (see repro.serve.snapshot) --------------------

    def export_state(self) -> tuple[int, list[Fact]]:
        """A consistent ``(epoch, EDB facts)`` view for checkpointing.

        Taken in the lock's shared mode: it can overlap queries but
        never a fact-load epoch, so the fact list is exactly the EDB
        as of the returned epoch.
        """
        with self._rw.read_locked():
            return self._epoch, list(self._edb.all_facts())

    def restore_state(self, facts: Iterable[Fact], epoch: int) -> int:
        """Install a recovered EDB and epoch (before serving begins).

        Facts already present (the program's own EDB) deduplicate, so
        restoring over a freshly loaded program only adds what fact
        loads contributed.  Returns how many facts were new.
        """
        with self._rw.write_locked():
            added = self._edb.insert_many(list(facts))
            self._epoch = max(self._epoch, epoch)
            return len(added)

    def export_planner(self) -> list[dict]:
        """The adaptive planner's converged records, JSON-ready.

        Empty for the fixed-strategy sessions (nothing to persist);
        see :meth:`~repro.planner.AdaptivePlanner.export_records`.
        """
        if self._planner is None:
            return []
        return self._planner.export_records()

    def restore_planner(self, records: list[dict]) -> tuple[int, int]:
        """Reinstall snapshot-persisted planner records.

        Call between :meth:`restore_state` and WAL replay (so the
        fingerprint validation sees the snapshot-time EDB).  Returns
        ``(restored, discarded)``; both 0 for fixed-strategy sessions,
        which ignore the records -- they are an optimization for the
        ``auto`` strategy, never a correctness input.
        """
        if self._planner is None or not records:
            return (0, 0)
        return self._planner.restore_records(list(records))

    # -- inspection ---------------------------------------------------

    @property
    def cache(self) -> FormCache:
        """The form cache (exposed for stats and tests)."""
        return self._cache

    @property
    def epoch(self) -> int:
        """The current fact epoch (bumped by each effective load)."""
        return self._epoch

    @property
    def edb(self) -> Database:
        """The live base EDB (mutating it bypasses epoch tracking)."""
        return self._edb

    @property
    def strategy(self) -> str:
        """The session's optimization strategy."""
        return self._strategy

    @property
    def on_limit(self) -> str:
        """The session's degradation policy (``fail|truncate|widen``)."""
        return self._on_limit

    @property
    def planner(self) -> "object | None":
        """The adaptive planner (``auto`` strategy only, else ``None``)."""
        return self._planner

    def stats(self) -> dict:
        """A JSON-ready operational snapshot."""
        with self._mutex:
            requests, errors = self.requests, self.errors
        snapshot = {
            "strategy": self._strategy,
            "requests": requests,
            "errors": errors,
            "epoch": self._epoch,
            "edb_facts": self._edb.count(),
            "cache": self._cache.stats(),
        }
        if self._planner is not None:
            snapshot["planner"] = self._planner.stats()
        return snapshot
