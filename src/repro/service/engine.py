"""The service facade: text in, :class:`Response` out.

:class:`Engine` wraps a :class:`~repro.service.session.Session` with
parsing, so callers can speak CQL source::

    from repro.service import Engine

    engine = Engine.from_text(PROGRAM_TEXT, strategy="rewrite")
    response = engine.query("?- reach(a, X), X <= 10.")
    print(response.answer_strings)
    engine.add_facts("edge(a, b, 3).")

Parse failures, unknown predicates, budget exhaustion and every other
deliberate error come back as error responses carrying the ``REPRO_*``
code -- the engine object stays usable afterwards.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
)
from repro.engine.facts import Fact
from repro.errors import ReproError, UsageError
from repro.governor import Budget
from repro.lang.ast import Program, Query
from repro.lang.parser import parse_program, parse_program_and_queries, parse_query
from repro.lang.terms import NumTerm, Sym
from repro.service.cache import DEFAULT_CACHE_SIZE
from repro.service.session import Response, Session


def _facts_from_program(program: Program) -> list[Fact]:
    """Ground facts from a parsed fact-only program text."""
    facts = []
    for rule in program:
        if not (
            rule.is_fact
            and rule.constraint.is_true()
            and not rule.head.variables()
        ):
            raise UsageError(
                f"not a ground fact: {rule}"
            )
        values = []
        for arg in rule.head.args:
            if isinstance(arg, Sym):
                values.append(arg)
            elif isinstance(arg, NumTerm) and arg.is_constant():
                values.append(arg.value)
            else:
                raise UsageError(f"not a ground fact: {rule}")
        facts.append(Fact.ground(rule.head.pred, values))
    return facts


class Engine:
    """A long-lived query engine over one loaded program."""

    def __init__(
        self,
        program: Program,
        strategy: str = "rewrite",
        max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
        eval_iterations: int = DEFAULT_EVAL_ITERATIONS,
        budget: Budget | None = None,
        on_limit: str = "truncate",
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.session = Session(
            program,
            strategy=strategy,
            max_iterations=max_iterations,
            eval_iterations=eval_iterations,
            budget=budget,
            on_limit=on_limit,
            cache_size=cache_size,
        )
        #: Queries that appeared in the loaded program text (populated
        #: by :meth:`from_text`); the CLI batch mode runs them first.
        self.initial_queries: list[Query] = []

    @classmethod
    def from_text(cls, text: str, **options) -> "Engine":
        """An engine over a program text (``?-`` queries kept aside)."""
        program, queries = parse_program_and_queries(text)
        engine = cls(program, **options)
        engine.initial_queries = queries
        return engine

    @classmethod
    def from_file(cls, path: str, **options) -> "Engine":
        """An engine over a program file."""
        with open(path) as handle:
            return cls.from_text(handle.read(), **options)

    # -- requests -----------------------------------------------------

    def query(self, query: Query | str) -> Response:
        """Answer a query (a :class:`Query` or ``?- ...`` source text)."""
        if isinstance(query, str):
            try:
                query = parse_query(query)
            except ReproError as error:
                return self.session._error_response(error)
            except ValueError as error:
                return self.session._error_response(UsageError(str(error)))
        return self.session.query(query)

    def add_facts(self, facts: str | Iterable[Fact]) -> Response:
        """Load new EDB facts (source text or :class:`Fact` objects)."""
        if isinstance(facts, str):
            try:
                facts = _facts_from_program(parse_program(facts))
            except ReproError as error:
                return self.session._error_response(error)
            except ValueError as error:
                return self.session._error_response(UsageError(str(error)))
        return self.session.add_facts(facts)

    def add_ground(self, pred: str, values: Iterable[object]) -> Response:
        """Load one ground fact from plain Python values."""
        return self.session.add_facts([Fact.ground(pred, values)])

    def batch(self, lines: Iterable[str]) -> Iterator[Response]:
        """Process batch-protocol lines (see :mod:`repro.service.batch`)."""
        from repro.service.batch import process_line

        for line in lines:
            response = process_line(self, line)
            if response is not None:
                yield response

    def stats(self) -> dict:
        """The session's operational snapshot."""
        return self.session.stats()
