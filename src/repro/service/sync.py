"""A reader-writer lock: the session's concurrency discipline.

Queries only *read* the shared EDB and the fact log (each evaluation
works on a private copy or a per-form warm database), so any number of
them may run concurrently; a fact load *writes* the EDB and bumps the
epoch, so it must run exclusively.  :class:`RWLock` implements exactly
that discipline: shared ``read_locked`` sections, exclusive
``write_locked`` sections, writer preference so a steady stream of
queries cannot starve fact loads.

The lock is not reentrant in either direction -- the session never
nests request handling.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """A writer-preference reader-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side --------------------------------------------------

    def acquire_read(self) -> None:
        """Enter a shared section (blocks while a writer is in or waiting)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave a shared section."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` form of the shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side --------------------------------------------------

    def acquire_write(self) -> None:
        """Enter the exclusive section (blocks out readers and writers)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the exclusive section."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` form of the exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- inspection (tests and health reporting) ----------------------

    def state(self) -> dict:
        """A point-in-time view of the lock's occupancy."""
        with self._cond:
            return {
                "readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
