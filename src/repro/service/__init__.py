"""Long-lived query service: compile-once sessions over a warm EDB.

The paper's rewritings specialize a program to *one* query's constraint
selection; a deployment serving many queries must amortize that cost
across queries that share a *form* and differ only in constants (the
parameterized constraint selections of Section 4).  This package is
that amortization layer:

* :mod:`repro.service.forms` canonicalizes a query into a
  :class:`QueryForm` -- predicate, adornment, and constraint shape with
  constants generalized to parameters;
* :mod:`repro.service.cache` is the bounded LRU of compiled forms;
* :mod:`repro.service.session` owns the warm EDB, per-request budgets,
  incremental fact loading, and error isolation;
* :mod:`repro.service.engine` is the user-facing facade (text in,
  :class:`Response` out);
* :mod:`repro.service.batch` streams the CLI ``--batch`` line protocol.

See ``docs/service.md`` for the full contract.
"""

from repro.service.cache import CacheEntry, FormCache
from repro.service.engine import Engine
from repro.service.forms import QueryForm, canonicalize
from repro.service.session import (
    CompiledForm,
    Response,
    Session,
    WarmState,
)

__all__ = [
    "CacheEntry",
    "CompiledForm",
    "Engine",
    "FormCache",
    "QueryForm",
    "Response",
    "Session",
    "WarmState",
    "canonicalize",
]
