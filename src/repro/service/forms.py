"""Query forms: canonical keys for compile-once caching.

Two queries have the same *form* when they differ only in constants --
the parameterized constraint selections of Section 4: ``?-
cheaporshort(madison, seattle, T, C), C <= 150`` and ``?-
cheaporshort(chicago, dallas, T, C), C <= 90`` share one form.  Every
rewriting strategy's output is reusable across a form's instances: the
constraint-propagation strategies depend only on the query predicate,
and the magic strategies embed the constants solely in the seed fact,
which :meth:`repro.service.session.CompiledForm.specialize` rebuilds
per call.

The canonical key is

* the query predicate and arity,
* the bf-adornment (constants are bound -- Section 7.5),
* the literal's argument pattern with variables renamed ``V0, V1, ...``
  by first occurrence and constants generalized to typed parameter
  slots (``sym`` / ``num``), and
* the constraint *shape*: each atom's operator and canonically-renamed
  coefficient terms, with the additive constant generalized.

The partition is conservative: :class:`repro.constraints.atom.Atom`
scales coefficients to coprime integers *including* the constant, so
``2X <= 100`` (stored as ``X <= 50``) and ``2X <= 101`` land in
different forms.  Splitting a true form across cache entries costs a
recompile, never an incorrect answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Query
from repro.lang.normalize import normalize_query
from repro.lang.terms import NumTerm, Sym, Var
from repro.magic.adorn import query_adornment


@dataclass(frozen=True)
class QueryForm:
    """The canonical, hashable identity of a query modulo constants."""

    pred: str
    arity: int
    adornment: str
    literal_shape: tuple[tuple[str, ...], ...]
    constraint_shape: tuple[tuple, ...]

    def __str__(self) -> str:
        slots = []
        parameter = 0
        for slot in self.literal_shape:
            if slot[0] == "var":
                slots.append(slot[1])
            else:
                slots.append(f"${parameter}")
                parameter += 1
        inner = ", ".join(slots)
        shape = f" | {len(self.constraint_shape)} constraint(s)" \
            if self.constraint_shape else ""
        return f"{self.pred}({inner})^{self.adornment}{shape}"


def canonicalize(query: Query) -> tuple[QueryForm, tuple[str, ...]]:
    """The query's form plus its parameters (the generalized constants).

    The parameters are informational -- specialization rebuilds the
    magic seed from the actual query rather than substituting them
    back -- but they are reported in responses and exercised by the
    benchmark's hit-rate workload.
    """
    normalized = normalize_query(query)
    renaming: dict[str, str] = {}

    def canonical_var(name: str) -> str:
        if name not in renaming:
            renaming[name] = f"V{len(renaming)}"
        return renaming[name]

    params: list[str] = []
    literal_shape: list[tuple[str, ...]] = []
    for arg in normalized.literal.args:
        if isinstance(arg, Var):
            literal_shape.append(("var", canonical_var(arg.name)))
        elif isinstance(arg, Sym):
            literal_shape.append(("sym",))
            params.append(arg.name)
        elif isinstance(arg, NumTerm) and arg.is_constant():
            literal_shape.append(("num",))
            params.append(str(arg.value))
        else:  # pragma: no cover - normalize_query flattens these
            raise ValueError(f"non-normalized query argument {arg!r}")
    # Constraint-only variables, in sorted order for determinism.
    for name in sorted(
        normalized.constraint.variables()
        - normalized.literal.variables()
    ):
        canonical_var(name)
    constraint_shape = []
    for atom in normalized.constraint.atoms:
        terms = tuple(sorted(
            (renaming.get(var, var), str(coeff))
            for var, coeff in atom.expr.sorted_terms()
        ))
        constraint_shape.append((atom.op.value, terms))
        params.append(str(atom.expr.constant))
    constraint_shape.sort()
    return (
        QueryForm(
            pred=normalized.literal.pred,
            arity=normalized.literal.arity,
            adornment=query_adornment(normalized),
            literal_shape=tuple(literal_shape),
            constraint_shape=tuple(constraint_shape),
        ),
        tuple(params),
    )
