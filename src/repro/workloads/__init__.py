"""Deterministic synthetic EDB generators for examples and benchmarks.

The paper evaluates by construction (worked examples), not on published
datasets, so workloads here are synthetic but shaped by the paper's
motivating scenarios: layered flight networks with controllable
cost/time selectivity (Examples 1.1/4.3), random and chain graphs for
the transitive-closure style programs (Examples 4.2, 7.1, 7.2), and
Fibonacci query instances (Examples 1.2/4.4).  All generators take an
explicit seed, so every benchmark run is reproducible.
"""

from repro.workloads.flights import flight_network
from repro.workloads.graphs import chain_edges, layered_edges, random_edges
from repro.workloads.fib import fib_magic_program, fib_program

__all__ = [
    "flight_network",
    "chain_edges",
    "layered_edges",
    "random_edges",
    "fib_program",
    "fib_magic_program",
]
