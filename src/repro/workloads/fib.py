"""The backward-Fibonacci workload (Examples 1.2 and 4.4).

``fib_program`` is the paper's ``P_fib``; ``fib_magic_program`` builds
``P_fib^{mg}`` -- or, with ``optimized=True``, ``P_fib^{mg}_1`` with the
predicate constraint ``$2 >= 1`` pushed into the recursive rule first
(Example 4.4) -- via the library's own transformations rather than by
pasting the paper's output, so the transformations themselves are under
test whenever this workload runs.
"""

from __future__ import annotations

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.core.predconstraints import gen_prop_predicate_constraints
from repro.lang.ast import Program, Query
from repro.lang.parser import parse_program, parse_query
from repro.magic.templates import MagicResult, magic_templates_full


FIB_PROGRAM_TEXT = """
fib(0, 1).
fib(1, 1).
fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
"""


def fib_program() -> Program:
    """The paper's ``P_fib``."""
    return parse_program(FIB_PROGRAM_TEXT).relabeled()


def fib_query(value: int = 5) -> Query:
    """The query ``?- fib(N, value).``."""
    return parse_query(f"?- fib(N, {value}).")


def fib_predicate_constraint() -> ConstraintSet:
    """``$2 >= 1``: a (non-minimum) predicate constraint for ``fib``.

    The minimum predicate constraint of ``fib`` is an infinite
    disjunction of points, so the generation fixpoint cannot produce it;
    the paper asserts ``$2 >= 1`` instead (Example 4.4) and our
    ``is_predicate_constraint`` verifies it inductively.
    """
    return ConstraintSet.of(
        Conjunction(
            [Atom.ge(LinearExpr.var("$2"), LinearExpr.const(1))]
        )
    )


def fib_magic_program(
    value: int = 5, optimized: bool = False
) -> MagicResult:
    """``P_fib^{mg}`` (Table 1) or ``P_fib^{mg}_1`` (Table 2)."""
    program = fib_program()
    if optimized:
        program, __, __ = gen_prop_predicate_constraints(
            program, given={"fib": fib_predicate_constraint()}
        )
    return magic_templates_full(program, fib_query(value))
