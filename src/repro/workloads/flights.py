"""Layered flight networks for the Examples 1.1/4.3 program.

The flight program composes legs transitively, so a cyclic leg relation
makes the *original* (unoptimized) program non-terminating -- the very
behaviour the paper's optimization addresses but which would make an
"original vs. rewritten" comparison a hang rather than a number.  The
generator therefore produces *layered* (acyclic) networks: cities are
arranged in layers and legs go only forward, bounding path lengths by
the layer count while still composing multi-leg flights.

``expensive_fraction`` controls how many legs are both slow (> 240
minutes) and expensive (> $150): exactly the legs the paper's Example
4.3 proves the rewritten program never looks at.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.database import Database
from repro.lang.ast import Program
from repro.lang.parser import parse_program


FLIGHTS_PROGRAM_TEXT = """
cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
                                Cost > 0, Time > 0.
flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                      T = T1 + T2 + 30, C = C1 + C2.
"""


def flights_program() -> Program:
    """The Example 1.1 program, query predicate ``cheaporshort``."""
    return parse_program(FLIGHTS_PROGRAM_TEXT).relabeled()


@dataclass(frozen=True)
class FlightNetwork:
    """A generated single-leg relation plus its shape parameters."""

    database: Database
    legs: tuple[tuple[str, str, int, int], ...]
    layers: tuple[tuple[str, ...], ...]

    @property
    def source(self) -> str:
        """A canonical source city (first layer)."""
        return self.layers[0][0]

    @property
    def destination(self) -> str:
        """A canonical destination city (last layer)."""
        return self.layers[-1][0]


def flight_network(
    n_layers: int = 4,
    width: int = 3,
    expensive_fraction: float = 0.4,
    seed: int = 0,
) -> FlightNetwork:
    """A layered network with a controllable share of irrelevant legs.

    Cheap/short legs have time in [20, 110] and cost in [10, 70] so that
    two- or three-leg compositions stay near the 240-minute / $150
    thresholds; "irrelevant" legs have time > 240 *and* cost > 150 and
    can never appear in a query-relevant flight.
    """
    rng = random.Random(seed)
    layers = tuple(
        tuple(f"city_{level}_{index}" for index in range(width))
        for level in range(n_layers)
    )
    legs: list[tuple[str, str, int, int]] = []
    for level in range(n_layers - 1):
        for src in layers[level]:
            for dst in layers[level + 1]:
                if rng.random() < expensive_fraction:
                    time = rng.randint(241, 500)
                    cost = rng.randint(151, 400)
                else:
                    time = rng.randint(20, 110)
                    cost = rng.randint(10, 70)
                legs.append((src, dst, time, cost))
    database = Database.from_ground({"singleleg": legs})
    return FlightNetwork(
        database=database, legs=tuple(legs), layers=layers
    )
