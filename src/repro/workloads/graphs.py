"""Graph-shaped EDB generators for the Section 4/7 example programs.

The transitive-closure style programs (Examples 4.2, 7.1, 7.2) take
binary relations over numbers; these generators produce them with
controllable size and value range so that constraint selections such as
``X <= 4`` have a predictable selectivity.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.database import Database


def chain_edges(length: int, start: int = 0) -> list[tuple[int, int]]:
    """A simple chain ``start -> start+1 -> ...`` of the given length."""
    return [(start + i, start + i + 1) for i in range(length)]


def random_edges(
    n_edges: int,
    max_node: int = 10,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Random directed edges over ``{0..max_node}`` (duplicates dropped)."""
    rng = random.Random(seed)
    edges = {
        (rng.randint(0, max_node), rng.randint(0, max_node))
        for _ in range(n_edges)
    }
    return sorted(edges)


def layered_edges(
    n_layers: int,
    width: int,
    seed: int = 0,
    fanout: int = 2,
) -> list[tuple[int, int]]:
    """Acyclic layered edges; node ids encode ``layer * width + index``."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for layer in range(n_layers - 1):
        for index in range(width):
            src = layer * width + index
            for __ in range(fanout):
                dst = (layer + 1) * width + rng.randrange(width)
                edges.add((src, dst))
    return sorted(edges)


def graph_database(
    relations: dict[str, Iterable[tuple[int, int]]],
) -> Database:
    """Bundle edge lists into a Database."""
    return Database.from_ground(
        {name: list(edges) for name, edges in relations.items()}
    )
