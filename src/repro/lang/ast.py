"""Literals, rules, programs and queries of the CQL.

A :class:`Rule` is ``head :- constraint, body`` where ``constraint`` is a
:class:`~repro.constraints.conjunction.Conjunction` of linear arithmetic
atoms and ``body`` is a tuple of ordinary literals.  A rule with an empty
body is a (constraint) fact (Section 2).  A :class:`Program` is a finite
set of rules; its meaning is the least model.

Rules are immutable.  Transformations (normalization, fold/unfold,
magic rewriting, constraint propagation) build new rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.constraints.conjunction import Conjunction
from repro.lang.terms import (
    FreshVars,
    Term,
    Var,
    is_plain,
    rename_term,
    substitute_term,
    term_variables,
)


@dataclass(frozen=True)
class Literal:
    """An ordinary (non-constraint) literal ``pred(t1, ..., tn)``."""

    pred: str
    args: tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        result: set[str] = set()
        for arg in self.args:
            result |= term_variables(arg)
        return frozenset(result)

    def rename(self, mapping: Mapping[str, str]) -> "Literal":
        """Rename variables."""
        return Literal(
            self.pred, tuple(rename_term(arg, mapping) for arg in self.args)
        )

    def substitute(self, bindings: Mapping[str, Term]) -> "Literal":
        """Substitute expressions for variables."""
        return Literal(
            self.pred,
            tuple(substitute_term(arg, bindings) for arg in self.args),
        )

    def with_pred(self, pred: str) -> "Literal":
        """The same literal under another predicate name."""
        return Literal(pred, self.args)

    def is_normalized(self) -> bool:
        """All arguments are variables or constants."""
        return all(is_plain(arg) for arg in self.args)

    def has_distinct_var_args(self) -> bool:
        """Are all arguments distinct variables?"""
        names = [arg.name for arg in self.args if isinstance(arg, Var)]
        return len(names) == len(self.args) and len(set(names)) == len(names)

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.pred}({inner})"


@dataclass(frozen=True)
class Rule:
    """``head :- constraint, body.``  (constraints form one conjunction)."""

    head: Literal
    body: tuple[Literal, ...] = ()
    constraint: Conjunction = field(default_factory=Conjunction.true)
    label: str | None = None

    @property
    def is_fact(self) -> bool:
        """No body literals (possibly with constraints: a constraint fact)."""
        return not self.body

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        result = set(self.head.variables())
        for literal in self.body:
            result |= literal.variables()
        result |= self.constraint.variables()
        return frozenset(result)

    def rename(self, mapping: Mapping[str, str]) -> "Rule":
        """Rename variables."""
        return Rule(
            self.head.rename(mapping),
            tuple(literal.rename(mapping) for literal in self.body),
            self.constraint.rename(mapping),
            self.label,
        )

    def rename_apart(self, avoid: Iterable[str]) -> "Rule":
        """Rename every variable to a fresh name outside ``avoid``."""
        fresh = FreshVars(frozenset(avoid) | self.variables())
        mapping = {
            name: fresh.next(name).name for name in sorted(self.variables())
        }
        return self.rename(mapping)

    def with_label(self, label: str | None) -> "Rule":
        """The same rule with a different display label."""
        return Rule(self.head, self.body, self.constraint, label)

    def with_constraint(self, constraint: Conjunction) -> "Rule":
        """The same rule with the constraint replaced."""
        return Rule(self.head, self.body, constraint, self.label)

    def add_constraints(self, extra: Conjunction) -> "Rule":
        """The same rule with extra constraint atoms."""
        return Rule(
            self.head, self.body, self.constraint.conjoin(extra), self.label
        )

    def is_normalized(self) -> bool:
        """Head and body literals contain only plain terms."""
        return self.head.is_normalized() and all(
            literal.is_normalized() for literal in self.body
        )

    def is_range_restricted(self) -> bool:
        """Every head variable is grounded by the body.

        The paper's sufficient syntactic condition (footnote 8) for a
        bottom-up evaluation to compute only ground facts: a head
        variable must occur in an ordinary body literal -- inequality
        constraints do not count -- or be *functionally determined* by
        such variables through equality constraints (the normalized
        spelling of an arithmetic head argument like ``T1 + T2 + 30``).
        """
        bound: set[str] = set()
        for literal in self.body:
            bound |= literal.variables()
        equalities = [
            atom
            for atom in self.constraint.atoms
            if atom.is_equality()
        ]
        progress = True
        while progress:
            progress = False
            for atom in equalities:
                unbound = atom.variables() - bound
                if len(unbound) == 1:
                    bound |= unbound
                    progress = True
        return self.head.variables() <= bound

    def __str__(self) -> str:
        parts = [str(literal) for literal in self.body]
        parts.extend(str(atom) for atom in self.constraint.atoms)
        head = str(self.head)
        if not parts:
            return f"{head}."
        return f"{head} :- {', '.join(parts)}."


@dataclass(frozen=True)
class Query:
    """A query literal, optionally with constraints (``?- C, q(ā).``)."""

    literal: Literal
    constraint: Conjunction = field(default_factory=Conjunction.true)

    def variables(self) -> frozenset[str]:
        """The variable names occurring in this object."""
        return self.literal.variables() | self.constraint.variables()

    def __str__(self) -> str:
        parts = [str(self.literal)]
        parts.extend(str(atom) for atom in self.constraint.atoms)
        return f"?- {', '.join(parts)}."


class Program:
    """An immutable finite set (sequence) of rules."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self._rules: tuple[Rule, ...] = tuple(rules)
        self._check_arities()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self._rules:
            for literal in (rule.head, *rule.body):
                known = arities.setdefault(literal.pred, literal.arity)
                if known != literal.arity:
                    raise ValueError(
                        f"predicate {literal.pred} used with arities "
                        f"{known} and {literal.arity}"
                    )
        self._arities = arities

    # -- inspection ---------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The rules, in order."""
        return self._rules

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def arity(self, pred: str) -> int:
        """Number of argument positions."""
        return self._arities[pred]

    def predicates(self) -> frozenset[str]:
        """The predicate names present."""
        return frozenset(self._arities)

    def derived_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one rule (IDB)."""
        return frozenset(rule.head.pred for rule in self._rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined (database)."""
        return self.predicates() - self.derived_predicates()

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        """The rules defining a predicate."""
        return tuple(
            rule for rule in self._rules if rule.head.pred == pred
        )

    def body_occurrences(self, pred: str) -> list[tuple[Rule, int]]:
        """All ``(rule, body_index)`` occurrences of ``pred`` literals."""
        found = []
        for rule in self._rules:
            for index, literal in enumerate(rule.body):
                if literal.pred == pred:
                    found.append((rule, index))
        return found

    def is_range_restricted(self) -> bool:
        """Are all rules range-restricted?"""
        return all(rule.is_range_restricted() for rule in self._rules)

    def is_normalized(self) -> bool:
        """Are all rules normalized (plain literal args)?"""
        return all(rule.is_normalized() for rule in self._rules)

    # -- dependency structure -------------------------------------------

    def dependency_graph(self) -> "nx.DiGraph":
        """Edges point from a head predicate to each body predicate."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.predicates())
        for rule in self._rules:
            for literal in rule.body:
                graph.add_edge(rule.head.pred, literal.pred)
        return graph

    def sccs_topological(
        self, roots: Iterable[str] | None = None
    ) -> list[frozenset[str]]:
        """Strongly connected components, highest (query side) first.

        With ``roots`` given, only SCCs reachable from them are returned.
        The first SCC is the one containing the roots (or a source SCC).
        """
        graph = self.dependency_graph()
        condensation = nx.condensation(graph)
        order = list(nx.topological_sort(condensation))
        members = condensation.nodes(data="members")
        sccs = [frozenset(members[node]) for node in order]
        if roots is None:
            return sccs
        reachable: set[str] = set()
        for root in roots:
            if root in graph:
                reachable.add(root)
                reachable |= nx.descendants(graph, root)
        return [scc for scc in sccs if scc & reachable]

    def recursive_with(self, pred_a: str, pred_b: str) -> bool:
        """Are the two predicates mutually recursive (same SCC)?"""
        graph = self.dependency_graph()
        if pred_a == pred_b:
            if graph.has_edge(pred_a, pred_a):
                return True
            return any(
                pred_a in scc and len(scc) > 1
                for scc in nx.strongly_connected_components(graph)
            )
        return any(
            pred_a in scc and pred_b in scc
            for scc in nx.strongly_connected_components(graph)
        )

    # -- construction -----------------------------------------------------

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        """The program extended with more rules."""
        return Program((*self._rules, *rules))

    def replace_rules(
        self, old: Iterable[Rule], new: Iterable[Rule]
    ) -> "Program":
        """The program with some rules replaced by others."""
        removed = list(old)
        kept: list[Rule] = []
        for rule in self._rules:
            if rule in removed:
                removed.remove(rule)
            else:
                kept.append(rule)
        return Program((*kept, *new))

    def restrict_to_reachable(self, roots: Iterable[str]) -> "Program":
        """Drop rules for predicates unreachable from the roots."""
        graph = self.dependency_graph()
        keep: set[str] = set()
        for root in roots:
            if root in graph:
                keep.add(root)
                keep |= nx.descendants(graph, root)
        return Program(
            rule for rule in self._rules if rule.head.pred in keep
        )

    def deduplicated(self) -> "Program":
        """Drop rules identical up to variable renaming and labels."""
        seen: set[tuple] = set()
        kept: list[Rule] = []
        for rule in self._rules:
            key = _canonical_rule_key(rule)
            if key not in seen:
                seen.add(key)
                kept.append(rule)
        return Program(kept)

    def relabeled(self, prefix: str = "r") -> "Program":
        """Assign sequential labels ``r1, r2, ...`` for display."""
        return Program(
            rule.with_label(f"{prefix}{index + 1}")
            for index, rule in enumerate(self._rules)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    def __str__(self) -> str:
        lines = []
        for rule in self._rules:
            prefix = f"{rule.label}: " if rule.label else ""
            lines.append(f"{prefix}{rule}")
        return "\n".join(lines)


def _canonical_rule_key(rule: Rule) -> tuple:
    """A renaming-invariant key for rule deduplication.

    Variables are renamed positionally in order of first occurrence in
    the head, then the body, then the (deterministically sorted)
    constraint atoms.
    """
    order: dict[str, str] = {}

    def visit(names) -> None:
        """Record variables in first-occurrence order."""
        for name in names:
            if name not in order:
                order[name] = f"_v{len(order)}"

    for arg in rule.head.args:
        visit(sorted(term_variables(arg)))
    for literal in rule.body:
        for arg in literal.args:
            visit(sorted(term_variables(arg)))
    for atom in rule.constraint.atoms:
        visit(sorted(atom.variables()))
    renamed = rule.rename(order)
    return (
        renamed.head,
        renamed.body,
        frozenset(renamed.constraint.atoms),
    )


def make_rule(
    head: Literal,
    body: Sequence[Literal] = (),
    constraint: Conjunction | None = None,
    label: str | None = None,
) -> Rule:
    """Convenience constructor used by tests and examples."""
    return Rule(
        head,
        tuple(body),
        constraint if constraint is not None else Conjunction.true(),
        label,
    )
