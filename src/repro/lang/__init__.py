"""The constraint query language (CQL) substrate.

Programs are finite sets of rules ``p(X̄) :- C, p1(X̄1), ..., pn(X̄n)``
where ``C`` is a conjunction of linear arithmetic constraints
(Section 2).  This package provides the term/rule/program AST, a text
parser, rule normalization (arithmetic terms in literals are flattened
into equality constraints), the ``PTOL``/``LTOP`` conversions between
rule variables and predicate argument positions (Definitions 2.7/2.8),
and a round-trippable pretty printer.
"""

from repro.lang.terms import NumTerm, Sym, Term, Var, num, sym, var
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.parser import parse_program, parse_query, parse_rule
from repro.lang.normalize import normalize_program, normalize_rule
from repro.lang.positions import arg_position, ltop, ptol

__all__ = [
    "Term",
    "Var",
    "Sym",
    "NumTerm",
    "var",
    "sym",
    "num",
    "Literal",
    "Rule",
    "Program",
    "Query",
    "parse_program",
    "parse_rule",
    "parse_query",
    "normalize_rule",
    "normalize_program",
    "ptol",
    "ltop",
    "arg_position",
]
