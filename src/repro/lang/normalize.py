"""Rule normalization: flatten arithmetic out of literal arguments.

The bottom-up engine and the constraint-propagation procedures operate
on *normalized* rules, in which every literal argument is a variable or
a constant; compound arithmetic terms such as ``fib(N - 1, X1)`` are
replaced by fresh variables with equality constraints
(``fib(V, X1), V = N - 1``).  This is semantics-preserving: the paper's
rule-application step conjoins argument equalities anyway, and the
normal form simply makes them explicit syntax.

Numeric *constants* in literals may optionally be flattened as well
(``keep_constants=False``), which some transformations (adornment, LTOP)
find convenient; by default they are kept in place.
"""

from __future__ import annotations

from repro.constraints.atom import Atom
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import FreshVars, NumTerm, Sym, Term, Var


def _flatten_literal(
    literal: Literal,
    fresh: FreshVars,
    extra: list[Atom],
    keep_constants: bool,
) -> Literal:
    args: list[Term] = []
    for arg in literal.args:
        if isinstance(arg, (Var, Sym)):
            args.append(arg)
        elif isinstance(arg, NumTerm):
            if arg.is_constant() and keep_constants:
                args.append(arg)
            else:
                new_var = fresh.next("N")
                extra.append(Atom.eq(new_var.to_expr(), arg.expr))
                args.append(new_var)
        else:  # pragma: no cover - exhaustive over Term
            raise TypeError(f"unknown term {arg!r}")
    return Literal(literal.pred, tuple(args))


def normalize_rule(rule: Rule, keep_constants: bool = True) -> Rule:
    """Flatten arithmetic terms in head and body literals."""
    if keep_constants and rule.is_normalized():
        return rule
    fresh = FreshVars(rule.variables())
    extra: list[Atom] = []
    head = _flatten_literal(rule.head, fresh, extra, keep_constants)
    body = tuple(
        _flatten_literal(literal, fresh, extra, keep_constants)
        for literal in rule.body
    )
    return Rule(head, body, rule.constraint.conjoin(extra), rule.label)


def normalize_program(
    program: Program, keep_constants: bool = True
) -> Program:
    """Normalize every rule of a program."""
    return Program(
        normalize_rule(rule, keep_constants) for rule in program
    )


def normalize_query(query: Query, keep_constants: bool = True) -> Query:
    """Flatten arithmetic terms in the query literal."""
    fresh = FreshVars(query.variables())
    extra: list[Atom] = []
    literal = _flatten_literal(query.literal, fresh, extra, keep_constants)
    return Query(literal, query.constraint.conjoin(extra))


def query_as_rule(query: Query, pred: str = "_query") -> Rule:
    """Treat a query as the body of a rule defining a new predicate.

    Section 2: "we can treat the query Q as the body of a rule defining
    a new predicate q, not occurring in P. The arity of q is the same as
    the number of variables in Q."  The query predicate's arguments are
    the query's variables in sorted order.
    """
    variables = sorted(query.variables())
    head = Literal(pred, tuple(Var(name) for name in variables))
    return Rule(head, (query.literal,), query.constraint, label="query")
