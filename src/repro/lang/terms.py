"""Terms of the constraint query language.

A literal argument is one of:

* :class:`Var` -- a rule variable (``X``, ``Time``),
* :class:`Sym` -- an uninterpreted symbolic constant (``madison``),
* :class:`NumTerm` -- a linear arithmetic term over variables and
  rational constants (``5``, ``N - 1``, ``T1 + T2 + 30``).

Numeric constants are :class:`NumTerm` with a constant expression.
Symbolic constants unify only with themselves; numeric structure is
handled by the constraint solver, not by syntactic unification, which is
what lets bottom-up evaluation manipulate *constraint facts*.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.constraints.linexpr import Coefficient, LinearExpr, as_fraction


@dataclass(frozen=True)
class Var:
    """A rule variable."""

    name: str

    def __str__(self) -> str:
        return self.name

    def to_expr(self) -> LinearExpr:
        """The variable as a linear expression."""
        return LinearExpr.var(self.name)


@dataclass(frozen=True)
class Sym:
    """An uninterpreted (symbolic, non-numeric) constant."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NumTerm:
    """A linear arithmetic term (possibly just a rational constant)."""

    expr: LinearExpr

    def __str__(self) -> str:
        return str(self.expr)

    def is_constant(self) -> bool:
        """Does the object contain no variables?"""
        return self.expr.is_constant()

    @property
    def value(self) -> Fraction:
        """The constant value; only valid when :meth:`is_constant`."""
        if not self.expr.is_constant():
            raise ValueError(f"{self} is not a numeric constant")
        return as_fraction(self.expr.constant)


Term = Union[Var, Sym, NumTerm]


def var(name: str) -> Var:
    """A variable term."""
    return Var(name)


def sym(name: str) -> Sym:
    """A symbolic-constant term."""
    return Sym(name)


def num(value: Coefficient) -> NumTerm:
    """A numeric constant term."""
    return NumTerm(LinearExpr.const(value))


def term_variables(term: Term) -> frozenset[str]:
    """The variable names occurring in a term."""
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, NumTerm):
        return term.expr.variables()
    return frozenset()


def rename_term(term: Term, mapping: Mapping[str, str]) -> Term:
    """Rename variables in a term."""
    if isinstance(term, Var):
        return Var(mapping.get(term.name, term.name))
    if isinstance(term, NumTerm):
        return NumTerm(term.expr.rename(mapping))
    return term


def substitute_term(
    term: Term, bindings: Mapping[str, "Term"]
) -> Term:
    """Substitute terms for variables.

    A variable may be replaced by any term; inside a :class:`NumTerm`
    only :class:`Var`/:class:`NumTerm` replacements are meaningful and a
    :class:`Sym` replacement raises.
    """
    if isinstance(term, Var):
        return bindings.get(term.name, term)
    if isinstance(term, Sym):
        return term
    expr_bindings: dict[str, LinearExpr] = {}
    for name in term.expr.variables():
        replacement = bindings.get(name)
        if replacement is None:
            continue
        if isinstance(replacement, Var):
            expr_bindings[name] = replacement.to_expr()
        elif isinstance(replacement, NumTerm):
            expr_bindings[name] = replacement.expr
        else:
            raise TypeError(
                f"cannot substitute symbolic constant {replacement} into "
                f"arithmetic term {term}"
            )
    if not expr_bindings:
        return term
    return NumTerm(term.expr.substitute(expr_bindings))


def is_plain(term: Term) -> bool:
    """Is the term a variable or a (symbolic or numeric) constant?

    Normalized rules only contain plain terms in literal argument
    positions; compound arithmetic is flattened into constraints.
    """
    if isinstance(term, (Var, Sym)):
        return True
    return term.is_constant()


class FreshVars:
    """A deterministic fresh-variable factory avoiding a set of names."""

    def __init__(self, avoid: frozenset[str] | set[str], prefix: str = "V"):
        self._avoid = set(avoid)
        self._prefix = prefix
        self._counter = 0

    def next(self, hint: str | None = None) -> Var:
        """Allocate the next fresh variable."""
        prefix = hint or self._prefix
        while True:
            self._counter += 1
            name = f"{prefix}_{self._counter}"
            if name not in self._avoid:
                self._avoid.add(name)
                return Var(name)
