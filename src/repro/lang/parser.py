"""A text parser for CQL programs.

Syntax (close to the paper's, ASCII-ized)::

    % comments run to end of line
    cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
    fib(0, 1).
    ?- cheaporshort(madison, seattle, T, C).

Identifiers starting with an upper-case letter or ``_`` are variables;
lower-case identifiers are predicate names (in predicate position) or
symbolic constants (in argument position).  Numeric literals may be
integers, decimals or rationals (``3/4``) and are parsed exactly.
Comparison operators: ``<``, ``<=``, ``=``, ``>=``, ``>``.
Arithmetic: ``+``, ``-``, scalar ``*``, and parentheses.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterator, NamedTuple

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.errors import ReproError
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.terms import NumTerm, Sym, Term, Var


class ParseError(ReproError, ValueError):
    """Raised on malformed program text, with line/column context."""

    code = "REPRO_PARSE"
    exit_code = 2

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class _Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<arrow>:-)
  | (?P<query>\?-)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<op><=|>=|==|<|>|=)
  | (?P<punct>[(),.+\-*/;:])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup
        value = match.group()
        column = position - line_start + 1
        position = match.end()
        if kind in ("ws", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = position - len(value.rsplit("\n", 1)[-1])
            continue
        assert kind is not None
        yield _Token(kind, value, line, column)
    yield _Token("eof", "", line, position - line_start + 1)


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._next()

    def _at(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- grammar -----------------------------------------------------------

    def program(self) -> tuple[Program, list[Query]]:
        """Parse a whole program plus queries."""
        rules: list[Rule] = []
        queries: list[Query] = []
        while not self._at("eof"):
            if self._at("query"):
                queries.append(self.query())
            else:
                rules.append(self.rule())
        return Program(rules), queries

    def rule(self) -> Rule:
        """Parse one rule (with optional label)."""
        label = None
        if (
            self._peek().kind == "ident"
            and self._tokens[self._index + 1].kind == "punct"
            and self._tokens[self._index + 1].text == ":"
        ):
            label = self._next().text
            self._next()
        head = self._literal()
        body: list[Literal] = []
        atoms: list[Atom] = []
        if self._at("arrow"):
            self._next()
            self._body_items(body, atoms)
        self._expect("punct", ".")
        return Rule(head, tuple(body), Conjunction(atoms), label)

    def query(self) -> Query:
        """Parse one ``?- ...`` query."""
        self._expect("query")
        body: list[Literal] = []
        atoms: list[Atom] = []
        self._body_items(body, atoms)
        self._expect("punct", ".")
        if len(body) != 1:
            raise self._error(
                f"a query must contain exactly one ordinary literal, "
                f"found {len(body)}"
            )
        return Query(body[0], Conjunction(atoms))

    def _body_items(
        self, body: list[Literal], atoms: list[Atom]
    ) -> None:
        while True:
            item = self._body_item()
            if isinstance(item, Literal):
                body.append(item)
            else:
                atoms.append(item)
            if self._at("punct", ","):
                self._next()
                continue
            break

    def _body_item(self) -> Literal | Atom:
        # A lower-case identifier followed by "(" (or by "," / "." with
        # no operator) is an ordinary literal; anything else starts an
        # arithmetic comparison.
        token = self._peek()
        if token.kind == "ident" and not _is_variable_name(token.text):
            following = self._tokens[self._index + 1]
            if following.kind == "punct" and following.text == "(":
                return self._literal()
            if following.kind in ("punct", "arrow", "eof") and (
                following.text in (",", ".")
            ):
                self._next()
                return Literal(token.text, ())
        lhs = self._arith_expr()
        op_token = self._peek()
        if op_token.kind != "op":
            raise self._error("expected a comparison operator")
        self._next()
        rhs = self._arith_expr()
        symbol = "=" if op_token.text == "==" else op_token.text
        return Atom.make(_require_numeric(lhs, op_token), symbol,
                         _require_numeric(rhs, op_token))

    def _literal(self) -> Literal:
        name_token = self._expect("ident")
        if _is_variable_name(name_token.text):
            raise ParseError(
                f"predicate names must be lower-case, got {name_token.text!r}",
                name_token.line,
                name_token.column,
            )
        if not self._at("punct", "("):
            return Literal(name_token.text, ())
        self._next()
        args: list[Term] = [self._term()]
        while self._at("punct", ","):
            self._next()
            args.append(self._term())
        self._expect("punct", ")")
        return Literal(name_token.text, tuple(args))

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "ident" and not _is_variable_name(token.text):
            following = self._tokens[self._index + 1]
            if following.text not in ("+", "-", "*", "/"):
                self._next()
                return Sym(token.text)
            raise ParseError(
                "symbolic constants cannot appear in arithmetic",
                token.line,
                token.column,
            )
        expr = self._arith_expr()
        if isinstance(expr, Sym):  # pragma: no cover - defended above
            return expr
        variables = sorted(expr.variables())
        if len(variables) == 1 and expr == LinearExpr.var(variables[0]):
            return Var(variables[0])
        return NumTerm(expr)

    # -- arithmetic expressions ---------------------------------------------

    def _arith_expr(self) -> LinearExpr:
        expr = self._arith_term()
        while self._at("punct", "+") or self._at("punct", "-"):
            operator = self._next().text
            rhs = self._arith_term()
            expr = expr + rhs if operator == "+" else expr - rhs
        return expr

    def _arith_term(self) -> LinearExpr:
        expr = self._arith_factor()
        while self._at("punct", "*") or self._at("punct", "/"):
            operator = self._next().text
            rhs = self._arith_factor()
            if operator == "*":
                if rhs.is_constant():
                    expr = expr * rhs.constant
                elif expr.is_constant():
                    expr = rhs * expr.constant
                else:
                    raise self._error(
                        "only scalar multiplication is linear"
                    )
            else:
                if not rhs.is_constant() or rhs.constant == 0:
                    raise self._error(
                        "division only by a nonzero constant"
                    )
                expr = expr * (Fraction(1) / rhs.constant)
        return expr

    def _arith_factor(self) -> LinearExpr:
        token = self._peek()
        if token.kind == "number":
            self._next()
            if "." in token.text:
                whole, frac = token.text.split(".")
                value = Fraction(int(whole or 0)) + Fraction(
                    int(frac), 10 ** len(frac)
                )
            else:
                value = Fraction(int(token.text))
            return LinearExpr.const(value)
        if token.kind == "ident":
            self._next()
            if not _is_variable_name(token.text):
                raise ParseError(
                    "symbolic constants cannot appear in arithmetic",
                    token.line,
                    token.column,
                )
            return LinearExpr.var(token.text)
        if self._at("punct", "("):
            self._next()
            expr = self._arith_expr()
            self._expect("punct", ")")
            return expr
        if self._at("punct", "-"):
            self._next()
            return -self._arith_factor()
        if self._at("punct", "+"):
            self._next()
            return self._arith_factor()
        raise self._error(f"unexpected token {token.text!r}")


def _is_variable_name(name: str) -> bool:
    return name[0].isupper() or name[0] == "_"


def _require_numeric(expr: LinearExpr, token: _Token) -> LinearExpr:
    if isinstance(expr, LinearExpr):
        return expr
    raise ParseError(  # pragma: no cover - defended in _term
        "comparisons require numeric operands", token.line, token.column
    )


def parse_program(text: str) -> Program:
    """Parse the rules of a program (queries in the text are rejected)."""
    program, queries = _Parser(text).program()
    if queries:
        raise ValueError(
            "program text contains a query; use parse_program_and_queries"
        )
    return program


def parse_program_and_queries(text: str) -> tuple[Program, list[Query]]:
    """Parse rules and any number of ``?- ...`` queries."""
    return _Parser(text).program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (or fact)."""
    program, queries = _Parser(text).program()
    if queries or len(program) != 1:
        raise ValueError("expected exactly one rule")
    return program.rules[0]


def parse_query(text: str) -> Query:
    """Parse a single ``?- ...`` query."""
    program, queries = _Parser(text).program()
    if len(program) != 0 or len(queries) != 1:
        raise ValueError("expected exactly one query")
    return queries[0]
