"""PTOL and LTOP: argument positions vs. rule variables (Defs 2.7/2.8).

Predicate constraints and QRP constraints are phrased over *argument
positions* ``$1, ..., $n``; constraints in rules are phrased over rule
variables.  ``PTOL(p(X̄), C)`` converts position constraints into
variable constraints for a specific literal; ``LTOP(p(X̄), C(X̄))``
converts variable constraints back into position constraints.

Both directions handle the general cases the paper spells out:

* repeated variables and arithmetic terms in the literal -- ``LTOP``
  introduces fresh distinct variables, equates them with the literal's
  terms, projects, and renames (Definition 2.8's ``Π`` construction);
* symbolic-constant argument positions -- these can carry no arithmetic
  constraint, so ``LTOP`` leaves them unconstrained and ``PTOL`` rejects
  position constraints that mention them.
"""

from __future__ import annotations

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.cset import ConstraintSet
from repro.constraints.linexpr import LinearExpr
from repro.lang.ast import Literal
from repro.lang.terms import NumTerm, Sym, Var


def arg_position(index: int) -> str:
    """The constraint-variable name of the ``index``-th argument (1-based)."""
    return f"${index}"


def position_index(name: str) -> int:
    """Inverse of :func:`arg_position`."""
    if not name.startswith("$"):
        raise ValueError(f"{name!r} is not an argument-position name")
    return int(name[1:])


def ptol(literal: Literal, cset: ConstraintSet) -> ConstraintSet:
    """Definition 2.7: position constraints -> constraints on the literal.

    Each ``$i`` is replaced by the literal's i-th argument term.  When
    the argument is a symbolic constant, a disjunct constraining ``$i``
    cannot hold of it, so that disjunct is dropped (it denotes no fact
    matching the literal); if *every* disjunct is dropped the result is
    ``false``.
    """
    bindings: dict[str, LinearExpr] = {}
    symbolic: set[str] = set()
    for index, arg in enumerate(literal.args, start=1):
        name = arg_position(index)
        if isinstance(arg, Var):
            bindings[name] = arg.to_expr()
        elif isinstance(arg, NumTerm):
            bindings[name] = arg.expr
        elif isinstance(arg, Sym):
            symbolic.add(name)
    kept: list[Conjunction] = []
    for disjunct in cset.disjuncts:
        if disjunct.variables() & symbolic:
            continue
        kept.append(disjunct.substitute(bindings))
    return ConstraintSet(kept)


def ptol_conjunction(
    literal: Literal, conjunction: Conjunction
) -> Conjunction:
    """PTOL of a single conjunction; symbolic positions must be absent."""
    result = ptol(literal, ConstraintSet.of(conjunction))
    if result.is_false():
        if not conjunction.is_satisfiable():
            return Conjunction.false()
        # A constrained symbolic position: the conjunction denotes no
        # fact matching the literal.
        return Conjunction.false()
    (single,) = result.disjuncts
    return single


def ltop(literal: Literal, cset: ConstraintSet) -> ConstraintSet:
    """Definition 2.8: constraints on the literal -> position constraints.

    Fresh variables ``Y1..Yn`` are equated with the literal's numeric
    terms, the constraint set is projected onto them (exact quantifier
    elimination), and the ``Yi`` are renamed to ``$i``.  Symbolic
    positions receive no constraint.  Constants in the literal *do*
    produce position constraints (``$i = c``), which is what lets query
    constants flow into QRP constraints.
    """
    fresh_names = [f"@{index}" for index in range(1, literal.arity + 1)]
    equalities: list[Atom] = []
    for index, arg in enumerate(literal.args, start=1):
        fresh = LinearExpr.var(fresh_names[index - 1])
        if isinstance(arg, Var):
            equalities.append(Atom.eq(fresh, arg.to_expr()))
        elif isinstance(arg, NumTerm):
            equalities.append(Atom.eq(fresh, arg.expr))
        # Symbolic constants: no arithmetic constraint on this position.
    rename = {
        fresh_names[index]: arg_position(index + 1)
        for index in range(literal.arity)
    }
    projected = [
        disjunct.conjoin(equalities).project(set(fresh_names)).rename(rename)
        for disjunct in cset.disjuncts
    ]
    return ConstraintSet(projected)


def ltop_conjunction(
    literal: Literal, conjunction: Conjunction
) -> Conjunction:
    """LTOP of a single conjunction (result is a single conjunction)."""
    result = ltop(literal, ConstraintSet.of(conjunction))
    if result.is_false():
        return Conjunction.false()
    (single,) = result.disjuncts
    return single
