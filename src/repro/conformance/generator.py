"""Seeded random generation of well-formed CQL program+query pairs.

The grammar is deliberately restricted to the fragment on which the
paper's equivalence theorems are unconditional *and* on which
termination is guaranteed, so every generated case is a legitimate
differential-testing input:

* **Sorted schema.**  Every predicate position is assigned a sort
  (``num`` or ``sym``) up front; facts, rule heads, constants and
  constraints respect it, so no generated case can trip the engine's
  sort-conflict handling spuriously.
* **Range restriction by construction.**  Rule bodies are generated
  first; head arguments are then drawn from the body's variables (plus
  sort-compatible constants), so every rule is range-restricted and
  bottom-up evaluation computes only ground facts.
* **Bounded numeric domain.**  Head arguments are plain variables or
  constants -- never arithmetic -- so every derivable value already
  occurs in the program or its EDB.  The Herbrand base is finite and
  every evaluation terminates; constraint atoms (bounded integer
  coefficients and constants) only prune it.
* **Adornment-compatible queries.**  Query arguments are constants
  (bound) or distinct fresh variables (free), which is exactly the
  b/f-adornment vocabulary the magic strategies expect; optional query
  constraint atoms range over the free numeric positions.

Recursion is permitted (a rule for ``p_i`` may call ``p_j`` with ``j <=
i``, including itself), giving transitive-closure-like cases; the
``recursion`` knob scales how often that happens.  All randomness flows
from one :class:`random.Random` seeded per case, so a ``(config, seed)``
pair is a stable case identity across runs and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fractions import Fraction

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.parser import parse_program_and_queries
from repro.lang.terms import NumTerm, Sym, Term, Var

_COMPARISONS = ("<", "<=", "=", ">=", ">")


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs bounding the size and shape of generated cases.

    The defaults keep the brute-force oracle comfortably fast (domain
    of at most ``domain_size`` numeric values plus a few symbols, rule
    bodies of at most ``max_body_literals`` literals) while still
    producing recursion, joins, constant joins, and constraint pruning.
    """

    max_edb_predicates: int = 2
    max_idb_predicates: int = 3
    max_arity: int = 3
    max_rules_per_predicate: int = 3
    max_body_literals: int = 3
    max_facts_per_predicate: int = 5
    #: Probability that a body literal calls an IDB predicate (possibly
    #: recursively) rather than an EDB predicate.
    recursion: float = 0.35
    #: Probability of attaching each potential constraint atom.
    constraint_density: float = 0.5
    max_constraint_atoms: int = 2
    #: Inclusive bound on |coefficient| in constraint atoms.
    coefficient_bound: int = 2
    #: Numeric constants are drawn from ``0 .. domain_size - 1``.
    domain_size: int = 5
    #: Number of distinct symbolic constants available.
    symbol_pool: int = 3
    #: Probability that a predicate position is sym-sorted.
    symbol_position_rate: float = 0.2
    #: Probability that a query argument position is bound.
    query_bound_rate: float = 0.4
    #: Probability of generating a ground fact for an IDB predicate.
    idb_fact_rate: float = 0.2

    def scaled_down(self) -> "GeneratorConfig":
        """A smaller variant (used by the CLI's ``--small`` preset)."""
        return replace(
            self,
            max_idb_predicates=2,
            max_arity=2,
            max_body_literals=2,
            max_facts_per_predicate=4,
        )


@dataclass
class GeneratedCase:
    """One program+query differential-testing input.

    ``program`` contains the rules *and* the ground EDB facts (as
    body-less rules), exactly as a ``.cql`` file would; ``seed`` is the
    per-case seed (``None`` for corpus-loaded cases).  ``text`` renders
    the case as parser-compatible CQL, which is the on-disk reproducer
    format.
    """

    program: Program
    query: Query
    seed: int | None = None
    label: str = ""
    notes: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        """The case as a parseable ``.cql`` document."""
        lines = [str(rule) for rule in self.program]
        lines.append(str(self.query))
        return "\n".join(lines) + "\n"

    @property
    def rule_count(self) -> int:
        """Number of proper (non-fact) rules."""
        return sum(1 for rule in self.program if not rule.is_fact)

    @property
    def fact_count(self) -> int:
        """Number of body-less (fact) rules."""
        return sum(1 for rule in self.program if rule.is_fact)

    def describe(self) -> str:
        """A one-line summary for logs and reproducer headers."""
        origin = f"seed={self.seed}" if self.seed is not None else "corpus"
        return (
            f"{origin} rules={self.rule_count} facts={self.fact_count} "
            f"query={self.query.literal.pred}"
        )


def case_from_text(
    text: str, label: str = "", seed: int | None = None
) -> GeneratedCase:
    """Rebuild a case from its reproducer text (one query expected)."""
    program, queries = parse_program_and_queries(text)
    if len(queries) != 1:
        raise ValueError(
            f"a conformance case needs exactly one query, "
            f"found {len(queries)}"
        )
    return GeneratedCase(
        program=program, query=queries[0], seed=seed, label=label
    )


class _Schema:
    """The sorted predicate schema a case is generated against."""

    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self.config = config
        self.sorts: dict[str, tuple[str, ...]] = {}
        self.edb: list[str] = []
        self.idb: list[str] = []
        n_edb = rng.randint(1, config.max_edb_predicates)
        n_idb = rng.randint(1, config.max_idb_predicates)
        for index in range(n_edb):
            name = f"e{index}"
            self.edb.append(name)
            self.sorts[name] = self._positions(rng)
        for index in range(n_idb):
            name = f"p{index}"
            self.idb.append(name)
            self.sorts[name] = self._positions(rng)

    def _positions(self, rng: random.Random) -> tuple[str, ...]:
        arity = rng.randint(1, self.config.max_arity)
        return tuple(
            "sym"
            if rng.random() < self.config.symbol_position_rate
            else "num"
            for __ in range(arity)
        )

    def arity(self, pred: str) -> int:
        return len(self.sorts[pred])


def _random_constant(
    rng: random.Random, sort: str, config: GeneratorConfig
) -> Term:
    if sort == "sym":
        return Sym(f"s{rng.randrange(config.symbol_pool)}")
    return NumTerm(
        LinearExpr.const(Fraction(rng.randrange(config.domain_size)))
    )


def _random_atom(
    rng: random.Random,
    num_vars: list[str],
    config: GeneratorConfig,
) -> Atom:
    """A linear atom over 1-2 numeric variables with bounded pieces."""
    arity = 1 if len(num_vars) == 1 or rng.random() < 0.5 else 2
    chosen = rng.sample(num_vars, arity)
    expr = LinearExpr.zero()
    for name in chosen:
        coefficient = 0
        while coefficient == 0:
            coefficient = rng.randint(
                -config.coefficient_bound, config.coefficient_bound
            )
        expr = expr + LinearExpr.var(name, Fraction(coefficient))
    # Center the constant on the reachable value range so atoms are
    # neither trivially true nor trivially false too often.
    span = config.coefficient_bound * (config.domain_size - 1) * arity
    constant = Fraction(rng.randint(-span, span))
    return Atom.make(
        expr, rng.choice(_COMPARISONS), LinearExpr.const(constant)
    )


def _generate_rule(
    rng: random.Random,
    schema: _Schema,
    head_pred: str,
    head_index: int,
    config: GeneratorConfig,
) -> Rule:
    """One range-restricted rule for ``head_pred`` (body first)."""
    body: list[Literal] = []
    var_sorts: dict[str, str] = {}
    n_literals = rng.randint(1, config.max_body_literals)
    for __ in range(n_literals):
        if schema.idb[: head_index + 1] and (
            rng.random() < config.recursion
        ):
            pred = rng.choice(schema.idb[: head_index + 1])
        else:
            pred = rng.choice(schema.edb)
        args: list[Term] = []
        for sort in schema.sorts[pred]:
            same_sort = [
                name for name, s in var_sorts.items() if s == sort
            ]
            roll = rng.random()
            if roll < 0.15:
                args.append(_random_constant(rng, sort, config))
            elif same_sort and roll < 0.45:
                args.append(Var(rng.choice(same_sort)))
            else:
                name = f"V{len(var_sorts)}"
                var_sorts[name] = sort
                args.append(Var(name))
        body.append(Literal(pred, tuple(args)))
    head_args: list[Term] = []
    for sort in schema.sorts[head_pred]:
        same_sort = [name for name, s in var_sorts.items() if s == sort]
        if same_sort and rng.random() > 0.2:
            head_args.append(Var(rng.choice(same_sort)))
        else:
            head_args.append(_random_constant(rng, sort, config))
    atoms: list[Atom] = []
    num_vars = sorted(
        name for name, sort in var_sorts.items() if sort == "num"
    )
    if num_vars:
        for __ in range(config.max_constraint_atoms):
            if rng.random() < config.constraint_density:
                atoms.append(_random_atom(rng, num_vars, config))
    return Rule(
        Literal(head_pred, tuple(head_args)),
        tuple(body),
        Conjunction(atoms),
    )


def _generate_fact(
    rng: random.Random,
    schema: _Schema,
    pred: str,
    config: GeneratorConfig,
) -> Rule:
    args = tuple(
        _random_constant(rng, sort, config)
        for sort in schema.sorts[pred]
    )
    return Rule(Literal(pred, args))


def _generate_query(
    rng: random.Random,
    schema: _Schema,
    pred: str,
    config: GeneratorConfig,
) -> Query:
    args: list[Term] = []
    free_num: list[str] = []
    fresh = 0
    for sort in schema.sorts[pred]:
        if rng.random() < config.query_bound_rate:
            args.append(_random_constant(rng, sort, config))
        else:
            name = f"Q{fresh}"
            fresh += 1
            args.append(Var(name))
            if sort == "num":
                free_num.append(name)
    atoms: list[Atom] = []
    if free_num and rng.random() < config.constraint_density:
        atoms.append(_random_atom(rng, free_num, config))
    return Query(Literal(pred, tuple(args)), Conjunction(atoms))


def generate_case(
    seed: int, config: GeneratorConfig | None = None
) -> GeneratedCase:
    """Generate the deterministic case identified by ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    schema = _Schema(rng, config)
    rules: list[Rule] = []
    for index, pred in enumerate(schema.idb):
        for __ in range(rng.randint(1, config.max_rules_per_predicate)):
            rules.append(
                _generate_rule(rng, schema, pred, index, config)
            )
        if rng.random() < config.idb_fact_rate:
            rules.append(_generate_fact(rng, schema, pred, config))
    for pred in schema.edb:
        for __ in range(
            rng.randint(0, config.max_facts_per_predicate)
        ):
            rules.append(_generate_fact(rng, schema, pred, config))
    # Query the highest-index IDB predicate: it can reach every other
    # predicate, so the whole generated program stays relevant.
    query = _generate_query(rng, schema, schema.idb[-1], config)
    return GeneratedCase(
        program=Program(rules), query=query, seed=seed
    )


def generate_cases(
    seed: int, count: int, config: GeneratorConfig | None = None
) -> list[GeneratedCase]:
    """The ``count`` cases seeded ``seed, seed+1, ...``."""
    return [
        generate_case(seed + offset, config) for offset in range(count)
    ]
