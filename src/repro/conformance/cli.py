"""``python -m repro conformance`` -- the differential batch runner.

Generates ``--count`` seeded cases (seeds ``--seed, --seed+1, ...``),
pushes each through the oracle and every pipeline configuration, and
reports disagreements.  Failing cases are delta-debugged down to
minimal reproducers and, with ``--corpus DIR``, written there as
committed ``.cql`` regression inputs; ``--replay DIR`` re-checks an
existing corpus instead of generating.

Exit status: ``0`` all cases agree, ``1`` at least one mismatch,
``2`` unusable input (bad corpus file or flag combination).

``--inject-bug NAME`` corrupts one strategy's optimized program on
purpose (see :data:`repro.conformance.differ.INJECTIONS`); the run is
then *expected* to exit 1, which is how CI proves the harness can
catch a rewrite bug end to end.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.conformance.differ import (
    DEFAULT_CONFIGS,
    EXTRA_CONFIGS,
    CheckSettings,
    INJECTIONS,
    check_case,
)
from repro.conformance.generator import (
    GeneratorConfig,
    case_from_text,
    generate_case,
)
from repro.conformance.shrinker import (
    shrink,
    still_fails_like,
    write_reproducer,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro conformance",
        description=(
            "Differential conformance testing: random CQL cases "
            "through a ground oracle and every rewrite strategy."
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first case seed (default 0)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=50,
        help="number of consecutive seeds to run (default 50)",
    )
    parser.add_argument(
        "--configs",
        default=",".join(DEFAULT_CONFIGS),
        help="comma-separated configurations to compare "
        f"(default {','.join(DEFAULT_CONFIGS)}; opt-in extras: "
        f"{','.join(EXTRA_CONFIGS)})",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-config wall-clock budget (default 5.0); exhausted "
        "configs are inconclusive, not failures",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the scaled-down generator preset (faster cases)",
    )
    parser.add_argument(
        "--replay",
        metavar="DIR",
        help="re-check every .cql case in DIR instead of generating",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        help="write shrunken reproducers for failing cases to DIR",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as generated, without reduction",
    )
    parser.add_argument(
        "--inject-bug",
        choices=sorted(INJECTIONS),
        help="deliberately corrupt one strategy's optimized program "
        "(harness self-test: the run must then fail)",
    )
    parser.add_argument(
        "--inject-config",
        default="rewrite",
        help="strategy the injected bug corrupts (default rewrite)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print a line per case, not only failures",
    )
    return parser


def _iter_cases(arguments):
    """Yield the cases this invocation should check."""
    if arguments.replay:
        directory = Path(arguments.replay)
        paths = sorted(directory.glob("*.cql"))
        if not paths:
            raise OSError(f"no .cql cases under {directory}")
        for path in paths:
            yield case_from_text(
                path.read_text(), label=path.name
            )
        return
    config = GeneratorConfig()
    if arguments.small:
        config = config.scaled_down()
    for offset in range(arguments.count):
        yield generate_case(arguments.seed + offset, config)


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    configs = tuple(
        name.strip()
        for name in arguments.configs.split(",")
        if name.strip()
    )
    unknown = (
        set(configs) - set(DEFAULT_CONFIGS) - set(EXTRA_CONFIGS)
    )
    if unknown:
        print(
            f"repro conformance: unknown configs {sorted(unknown)} "
            f"(choose from "
            f"{', '.join(DEFAULT_CONFIGS + EXTRA_CONFIGS)})",
            file=sys.stderr,
        )
        return 2
    settings = CheckSettings(deadline=arguments.deadline)
    inject = None
    if arguments.inject_bug:
        inject = (
            arguments.inject_config,
            INJECTIONS[arguments.inject_bug],
        )

    def run(case):
        return check_case(
            case, configs=configs, settings=settings, inject=inject
        )

    checked = failures = skipped = 0
    try:
        cases = list(_iter_cases(arguments))
    except (OSError, ValueError) as error:
        print(f"repro conformance: {error}", file=sys.stderr)
        return 2
    for case in cases:
        result = run(case)
        checked += 1
        if result.skipped:
            skipped += 1
        if result.ok:
            if arguments.verbose:
                print(result.summary())
            continue
        failures += 1
        print(result.summary())
        reported = case
        if not arguments.no_shrink:
            reported, steps = shrink(
                case, still_fails_like(result, run)
            )
            print(
                f"  shrunk in {steps} steps to "
                f"{reported.rule_count} rules / "
                f"{reported.fact_count} facts"
            )
        print(
            "  " + "\n  ".join(reported.text.rstrip().splitlines())
        )
        if arguments.corpus:
            path = write_reproducer(
                reported,
                arguments.corpus,
                header=[
                    f"found by: repro conformance --seed "
                    f"{arguments.seed} --count {arguments.count}",
                    *(
                        [f"injected bug: {arguments.inject_bug}"]
                        if arguments.inject_bug
                        else []
                    ),
                ],
            )
            print(f"  reproducer written to {path}")
    print(
        f"conformance: {checked} cases, {failures} failing, "
        f"{skipped} with inconclusive configs "
        f"[configs: {','.join(configs)}]"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
