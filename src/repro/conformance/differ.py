"""Answer-set comparison across the oracle and every pipeline config.

One generated case is run through the brute-force ground oracle
(:mod:`repro.conformance.oracle`) and through every optimization
strategy the driver offers -- ``none`` (evaluate as written), ``pred``,
``qrp``, ``rewrite`` (pred+qrp), ``magic``, ``optimal`` (the Theorem
7.10 order, which exercises the fold/unfold machinery end to end) --
plus the compile-once warm-cache path of :class:`repro.service.Session`
(queried twice: the second, warm answer must match the first).  All
complete runs must produce identical answer sets; any difference is a
:class:`Mismatch` carrying both sides.

Comparison is modulo constraint representation: ground answers compare
as value tuples, and a non-ground (constraint) answer fact is
concretized over the case's finite numeric domain before comparison --
the apples-to-apples reading against a ground oracle.  Engine-only
comparisons of residual constraint facts fall back to the solver-backed
mutual-subsumption test of :meth:`repro.engine.facts.Fact.subsumes`
(the same machinery :mod:`repro.core.equivalence` trusts).

Every config runs under its own :class:`repro.governor.Budget`, so a
pathological case truncates and is reported *inconclusive* (skipped)
rather than hanging the harness or counting as a false mismatch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.driver import optimize, split_edb
from repro.engine import evaluate
from repro.engine.facts import Fact
from repro.engine.query import answers as raw_answers
from repro.errors import ReproError
from repro.governor import Budget
from repro.governor import budget as governor
from repro.lang.ast import Program, Query
from repro.lang.positions import arg_position
from repro.lang.terms import Sym
from repro.obs.recorder import count as obs_count, span as obs_span

from repro.conformance.generator import GeneratedCase
from repro.conformance.oracle import (
    OracleBudgetError,
    numeric_domain,
    oracle_answers,
)

#: The configurations every case is pushed through, in report order.
#: ``auto`` runs the cost-based planner end to end: collect EDB stats,
#: rank the paper-ordered strategy sequences, then execute the chosen
#: one -- whatever it picks must agree with the oracle like any fixed
#: strategy.
DEFAULT_CONFIGS = (
    "oracle",
    "none",
    "pred",
    "qrp",
    "rewrite",
    "magic",
    "optimal",
    "auto",
    "service",
)

#: Opt-in configurations, valid for ``--configs`` but excluded from
#: the default sweep: ``sharded`` spawns a 2-shard worker-subprocess
#: cluster per case (:func:`_sharded_run`), far too heavy to run on
#: every seed by default.
EXTRA_CONFIGS = ("sharded",)

#: A program-mutating bug injection: (strategy to corrupt, mutation).
Injection = "tuple[str, Callable[[Program], Program]]"


@dataclass(frozen=True)
class CheckSettings:
    """Resource envelope for one case's differential run."""

    deadline: float = 5.0
    max_facts: int = 20_000
    eval_iterations: int = 80
    max_iterations: int = 50
    oracle_max_facts: int = 20_000

    def budget(self) -> Budget:
        return Budget(
            deadline=self.deadline, max_facts=self.max_facts
        )


@dataclass
class ConfigRun:
    """What one configuration produced for one case.

    ``completeness`` is ``"complete"``, a ``"truncated:<resource>"``
    marker (inconclusive -- the config is excluded from comparison), or
    ``"error:<CODE>"`` when the config raised.
    """

    name: str
    answers: frozenset[str] | None
    completeness: str = "complete"
    detail: str = ""

    @property
    def complete(self) -> bool:
        return self.completeness == "complete"

    @property
    def errored(self) -> bool:
        return self.completeness.startswith("error:")


@dataclass
class Mismatch:
    """Two configurations disagreeing on one case's answers."""

    left: str
    right: str
    only_left: tuple[str, ...]
    only_right: tuple[str, ...]
    kind: str = "answers"

    def summary(self) -> str:
        if self.kind == "error":
            return f"{self.right} errored ({self.only_right[0]})"
        parts = [f"{self.left} vs {self.right}:"]
        if self.only_left:
            parts.append(
                f"only {self.left}: {sorted(self.only_left)[:4]}"
            )
        if self.only_right:
            parts.append(
                f"only {self.right}: {sorted(self.only_right)[:4]}"
            )
        return " ".join(parts)


@dataclass
class CaseResult:
    """The full differential verdict for one case."""

    case: GeneratedCase
    runs: dict[str, ConfigRun] = field(default_factory=dict)
    mismatches: list[Mismatch] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def conclusive(self) -> bool:
        """At least two configs completed and could be compared."""
        return (
            sum(1 for run in self.runs.values() if run.complete) >= 2
        )

    def summary(self) -> str:
        if self.ok:
            state = "ok" if self.conclusive else "inconclusive"
        else:
            state = "MISMATCH " + "; ".join(
                mismatch.summary() for mismatch in self.mismatches
            )
        return f"[{self.case.describe()}] {state}"


def canonical_value(value: object) -> str:
    """One answer component in the harness's canonical spelling."""
    if isinstance(value, Sym):
        return value.name
    if isinstance(value, Fraction):
        return f"#{value}"
    if isinstance(value, str):
        return value
    raise TypeError(f"unexpected answer value {value!r}")


def canonical_answers(
    facts: list[Fact], domain: list[Fraction]
) -> frozenset[str]:
    """Engine answer facts as canonical strings.

    Ground facts map directly; a constraint (non-ground) fact is
    concretized by enumerating the case's finite numeric domain at its
    pending positions and keeping the combinations its constraint
    admits, which is exactly the set a ground evaluator could see.
    """
    rendered: set[str] = set()
    for fact in facts:
        if fact.is_ground():
            rendered.add(
                "|".join(canonical_value(v) for v in fact.args)
            )
            continue
        pending = fact.pending_positions()
        for combo in itertools.product(domain, repeat=len(pending)):
            assignment = {
                arg_position(position): value
                for position, value in zip(pending, combo)
            }
            if not fact.constraint.satisfied_by(assignment):
                continue
            values = list(fact.args)
            for position, value in zip(pending, combo):
                values[position - 1] = value
            rendered.add(
                "|".join(canonical_value(v) for v in values)
            )
    return frozenset(rendered)


def facts_equivalent(left: list[Fact], right: list[Fact]) -> bool:
    """Solver-backed answer-set equivalence modulo representation.

    Each side's facts must be subsumed by some fact on the other side
    (mutual coverage).  This is the exact check for ground answers and
    a sound, conservative one for residual constraint facts.
    """
    return all(
        any(other.subsumes(fact) for other in right) for fact in left
    ) and all(
        any(other.subsumes(fact) for other in left) for fact in right
    )


def _oracle_run(
    case: GeneratedCase, settings: CheckSettings
) -> ConfigRun:
    try:
        answers = oracle_answers(
            case.program,
            case.query,
            max_facts=settings.oracle_max_facts,
        )
    except OracleBudgetError as error:
        return ConfigRun(
            "oracle", None, f"truncated:{error.resource}"
        )
    return ConfigRun(
        "oracle",
        frozenset(
            "|".join(canonical_value(v) for v in answer)
            for answer in answers
        ),
    )


def _strategy_run(
    case: GeneratedCase,
    strategy: str,
    settings: CheckSettings,
    domain: list[Fraction],
    mutate: "Callable[[Program], Program] | None" = None,
) -> ConfigRun:
    """Optimize + evaluate + extract, mirroring the driver core.

    Reimplemented (rather than calling ``answer_query``) to expose the
    post-rewrite seam where ``mutate`` injects a deliberate bug, and to
    classify truncation per config.
    """
    from repro.errors import BudgetExceeded

    rules, edb = split_edb(case.program)
    meter = settings.budget().meter()
    with governor.governed(meter):
        fallbacks: list[str] = []
        try:
            optimized, query_pred, __ = optimize(
                rules,
                case.query,
                strategy,
                settings.max_iterations,
                fallbacks,
                on_limit="widen",
            )
        except BudgetExceeded as error:
            # An exhausted optimization is inconclusive, not a bug.
            return ConfigRun(
                strategy, None, f"truncated:{error.resource}"
            )
        if mutate is not None:
            optimized = mutate(optimized)
        result = evaluate(
            optimized,
            edb,
            max_iterations=settings.eval_iterations,
            budget=meter,
        )
        if not result.reached_fixpoint:
            return ConfigRun(
                strategy, None, result.completeness
            )
        effective = Query(
            case.query.literal.with_pred(query_pred),
            case.query.constraint,
        )
        with meter.paused():
            found = raw_answers(result.database, effective)
    return ConfigRun(
        strategy,
        canonical_answers(found, domain),
        detail=",".join(fallbacks),
    )


def _auto_run(
    case: GeneratedCase,
    settings: CheckSettings,
    domain: list[Fraction],
) -> ConfigRun:
    """The planner path: stats + bounded search pick the strategy.

    The chosen strategy then runs exactly like a fixed config, so a
    planner that picks an unsound sequence (or a cost model that
    steers into a broken rewrite) surfaces as an ordinary mismatch.
    The pick is recorded in ``detail`` for triage.
    """
    from repro.planner import collect_stats, plan_query

    rules, edb = split_edb(case.program)
    stats = collect_stats(edb)
    plan = plan_query(rules, case.query, stats)
    run = _strategy_run(case, plan.strategy, settings, domain)
    detail = f"plan={plan.strategy}"
    if run.detail:
        detail = f"{detail},{run.detail}"
    return ConfigRun(
        "auto", run.answers, run.completeness, detail=detail
    )


def _service_runs(
    case: GeneratedCase,
    settings: CheckSettings,
    domain: list[Fraction],
    strategy: str = "magic",
) -> list[ConfigRun]:
    """The warm-cache path: same query twice through one Session.

    The second request must hit the form cache and the warm database;
    its answers must equal the cold ones (run name ``service-warm``).
    The magic strategy is used because it exercises the most service
    machinery (seed-stripped template, per-seed warm states) at a
    fraction of the ``optimal`` pipeline's rewrite cost.
    """
    from repro.service.session import Session

    session = Session(
        case.program,
        strategy=strategy,
        max_iterations=settings.max_iterations,
        eval_iterations=settings.eval_iterations,
        budget=settings.budget(),
        on_limit="truncate",
    )
    runs: list[ConfigRun] = []
    for name in ("service", "service-warm"):
        response = session.query(case.query)
        if response.kind == "error":
            runs.append(
                ConfigRun(
                    name, None, f"error:{response.error_code}",
                    detail=response.error_message or "",
                )
            )
        elif response.completeness.startswith("truncated"):
            runs.append(ConfigRun(name, None, response.completeness))
        else:
            runs.append(
                ConfigRun(
                    name,
                    canonical_answers(response.answers, domain),
                )
            )
    return runs


def _sharded_run(
    case: GeneratedCase,
    settings: CheckSettings,
    domain: list[Fraction],
    shards: int = 2,
) -> ConfigRun:
    """One query through a real multi-process shard cluster.

    Spawns ``shards`` worker subprocesses over the case's program,
    runs the distributed delta-exchange fixpoint, and canonicalizes
    the gathered answers exactly like every other config -- the differ
    then proves the sharded evaluation answer-identical to the oracle
    and the single-session runs.  Not in :data:`DEFAULT_CONFIGS`
    (subprocess spawns per case are expensive); opt in with
    ``--configs ...,sharded``.
    """
    from repro.shard import ShardedEngine

    text = "\n".join(str(rule) for rule in case.program)
    engine = ShardedEngine.from_text(
        text,
        shards,
        strategy="rewrite",
        max_iterations=settings.max_iterations,
        eval_iterations=settings.eval_iterations,
        budget=settings.budget(),
        on_limit="truncate",
    )
    try:
        engine.coordinator.start()
        response = engine.session.query(case.query)
    finally:
        engine.coordinator.close(drain=False)
    if response.kind == "error":
        return ConfigRun(
            "sharded",
            None,
            f"error:{response.error_code}",
            detail=response.error_message or "",
        )
    if response.completeness.startswith("truncated"):
        return ConfigRun("sharded", None, response.completeness)
    return ConfigRun(
        "sharded", canonical_answers(response.answers, domain)
    )


def check_case(
    case: GeneratedCase,
    configs: tuple[str, ...] = DEFAULT_CONFIGS,
    settings: CheckSettings | None = None,
    inject: "Injection | None" = None,
) -> CaseResult:
    """Run one case through every configuration and compare answers.

    ``inject`` is an optional ``(strategy, mutation)`` pair applied to
    that strategy's optimized program before evaluation -- the
    harness's own fault injection, used to prove a rewrite bug would
    be caught (and by the shrinker tests).
    """
    settings = settings or CheckSettings()
    obs_count("conformance.cases")
    result = CaseResult(case)
    domain = numeric_domain(case.program, case.query)
    with obs_span("conformance.case", query=case.query.literal.pred):
        for config in configs:
            obs_count("conformance.configs_run")
            try:
                if config == "oracle":
                    runs = [_oracle_run(case, settings)]
                elif config == "auto":
                    runs = [_auto_run(case, settings, domain)]
                elif config == "service":
                    runs = _service_runs(case, settings, domain)
                elif config == "sharded":
                    runs = [_sharded_run(case, settings, domain)]
                else:
                    mutate = None
                    if inject is not None and inject[0] == config:
                        mutate = inject[1]
                    runs = [
                        _strategy_run(
                            case, config, settings, domain, mutate
                        )
                    ]
            except ReproError as error:
                obs_count("conformance.errors")
                runs = [
                    ConfigRun(
                        config,
                        None,
                        f"error:{error.code}",
                        detail=str(error),
                    )
                ]
            except (ValueError, KeyError) as error:
                # KeyError covers degenerate programs (e.g. a shrink
                # candidate that deleted every rule of the query's
                # predicate) hitting Program.arity.
                obs_count("conformance.errors")
                runs = [
                    ConfigRun(
                        config,
                        None,
                        "error:REPRO_INTERNAL",
                        detail=str(error),
                    )
                ]
            for run in runs:
                result.runs[run.name] = run
    _compare(result)
    if result.mismatches:
        obs_count("conformance.mismatches")
    if result.skipped:
        obs_count("conformance.skipped")
    return result


def _compare(result: CaseResult) -> None:
    """Fill mismatches/skipped from the per-config runs."""
    complete = [
        run for run in result.runs.values() if run.complete
    ]
    for run in result.runs.values():
        if run.errored:
            result.mismatches.append(
                Mismatch(
                    left="(run)",
                    right=run.name,
                    only_left=(),
                    only_right=(run.completeness, run.detail),
                    kind="error",
                )
            )
        elif not run.complete:
            result.skipped.append(run.name)
    if not complete:
        return
    reference = next(
        (run for run in complete if run.name == "oracle"), complete[0]
    )
    for run in complete:
        if run.name == reference.name:
            continue
        if run.answers != reference.answers:
            assert run.answers is not None
            assert reference.answers is not None
            result.mismatches.append(
                Mismatch(
                    left=reference.name,
                    right=run.name,
                    only_left=tuple(
                        sorted(reference.answers - run.answers)
                    ),
                    only_right=tuple(
                        sorted(run.answers - reference.answers)
                    ),
                )
            )


# -- canned bug injections (CLI --inject-bug, tests) -------------------


def tighten_bug(program: Program) -> Program:
    """Tighten the first inequality constraint atom by 1.

    A realistic rewrite bug: an off-by-one in a propagated bound makes
    the optimized program prune facts it must keep, losing answers on
    the cases that straddle the bound.
    """
    from repro.constraints.atom import Atom, Op
    from repro.constraints.conjunction import Conjunction
    from repro.constraints.linexpr import LinearExpr

    new_rules = []
    done = False
    for rule in program:
        if not done and not rule.is_fact:
            atoms = list(rule.constraint.atoms)
            for index, atom in enumerate(atoms):
                if atom.op is not Op.EQ and not atom.is_ground():
                    atoms[index] = Atom(
                        atom.expr + LinearExpr.const(1), atom.op
                    )
                    done = True
                    break
            if done:
                rule = rule.with_constraint(Conjunction(atoms))
        new_rules.append(rule)
    return Program(new_rules)


def drop_rule_bug(program: Program) -> Program:
    """Drop the last proper rule -- a lost-rule rewrite bug."""
    rules = list(program)
    for index in range(len(rules) - 1, -1, -1):
        if not rules[index].is_fact:
            del rules[index]
            break
    return Program(rules)


INJECTIONS: dict[str, Callable[[Program], Program]] = {
    "tighten": tighten_bug,
    "drop-rule": drop_rule_bug,
}
