"""Differential conformance harness for the whole rewrite pipeline.

The paper's correctness results (Theorem 2.1's rule-application
soundness, the Theorem 4.x / Proposition 4.1-4.2 equivalences for the
propagation rewrites, Theorem 7.10's optimality order) all promise one
observable thing: **every pipeline configuration answers every query
identically**.  This package turns that promise into an executable
property over randomly generated programs:

* :mod:`repro.conformance.generator` -- a seeded, size-bounded random
  generator of well-formed CQL program+query pairs whose bounded
  numeric domains guarantee terminating evaluation;
* :mod:`repro.conformance.oracle` -- a deliberately naive ground
  evaluator (finite-domain enumeration, no solver, no indexes, no
  subsumption) sharing nothing with :mod:`repro.engine`;
* :mod:`repro.conformance.differ` -- runs each case through the oracle
  and every strategy (``none``, ``pred``, ``qrp``, ``rewrite``,
  ``magic``, ``optimal``) plus the warm-cache ``service.Session`` path
  and compares answer sets modulo constraint representation;
* :mod:`repro.conformance.shrinker` -- a delta-debugging reducer that
  minimizes failing cases and writes ``.cql`` reproducers.

Entry points: ``python -m repro conformance --seed N --count K`` (see
:mod:`repro.conformance.cli`) and the pytest suite under
``tests/conformance/``.  ``docs/testing.md`` documents the workflow.
"""

from repro.conformance.differ import (
    CaseResult,
    ConfigRun,
    DEFAULT_CONFIGS,
    Mismatch,
    check_case,
)
from repro.conformance.generator import (
    GeneratedCase,
    GeneratorConfig,
    case_from_text,
    generate_case,
    generate_cases,
)
from repro.conformance.oracle import OracleBudgetError, oracle_answers
from repro.conformance.shrinker import shrink, write_reproducer

__all__ = [
    "CaseResult",
    "ConfigRun",
    "DEFAULT_CONFIGS",
    "Mismatch",
    "check_case",
    "GeneratedCase",
    "GeneratorConfig",
    "case_from_text",
    "generate_case",
    "generate_cases",
    "OracleBudgetError",
    "oracle_answers",
    "shrink",
    "write_reproducer",
]
