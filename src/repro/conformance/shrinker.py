"""Delta-debugging reduction of failing conformance cases.

When the differ finds a mismatch, the raw generated case is usually
bigger than the bug needs.  :func:`shrink` greedily minimizes it while
the failure persists, using only well-formedness-preserving moves:

* delete whole rules and facts (in shrinking chunk sizes, ddmin-style);
* delete individual constraint atoms from rules;
* delete query constraint atoms.

A candidate counts as "still failing" only when it reproduces a
mismatch *without introducing new error classes*: a reduction that
trades an answer mismatch for a crash is rejected, so the reducer
cannot wander off the original bug.  Each accepted reduction bumps the
``conformance.shrink_steps`` counter.

:func:`write_reproducer` serializes the minimized case into
``tests/conformance/corpus/`` as a commented, parser-compatible
``.cql`` file -- the committed regression format the pytest suite
replays deterministically.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable, Iterable

from repro.constraints.conjunction import Conjunction
from repro.lang.ast import Program, Query
from repro.obs.recorder import count as obs_count

from repro.conformance.differ import CaseResult
from repro.conformance.generator import GeneratedCase

#: A predicate deciding whether a candidate case still fails.
FailurePredicate = Callable[[GeneratedCase], bool]


def still_fails_like(
    original: CaseResult,
    check: Callable[[GeneratedCase], CaseResult],
) -> FailurePredicate:
    """The standard failure predicate for :func:`shrink`.

    A candidate fails when it has at least one mismatch and every
    errored config was already errored in the original result (no new
    error classes smuggled in by the reduction).
    """
    original_errors = {
        run.name
        for run in original.runs.values()
        if run.errored
    }

    def fails(candidate: GeneratedCase) -> bool:
        result = check(candidate)
        if not result.mismatches:
            return False
        errored = {
            run.name
            for run in result.runs.values()
            if run.errored
        }
        return errored <= original_errors

    return fails


def _with_program(
    case: GeneratedCase, program: Program
) -> GeneratedCase:
    return GeneratedCase(
        program=program,
        query=case.query,
        seed=case.seed,
        label=case.label,
        notes=case.notes,
    )


def _rule_deletions(case: GeneratedCase) -> Iterable[GeneratedCase]:
    """Candidates with a chunk of rules removed, biggest chunks first."""
    rules = list(case.program)
    size = len(rules) // 2
    while size >= 1:
        for start in range(0, len(rules), size):
            kept = rules[:start] + rules[start + size:]
            if kept:
                yield _with_program(case, Program(kept))
        size //= 2


def _atom_deletions(case: GeneratedCase) -> Iterable[GeneratedCase]:
    """Candidates with one rule constraint atom removed."""
    rules = list(case.program)
    for index, rule in enumerate(rules):
        atoms = rule.constraint.atoms
        for drop in range(len(atoms)):
            slimmer = rule.with_constraint(
                Conjunction(
                    atoms[:drop] + atoms[drop + 1:]
                )
            )
            yield _with_program(
                case,
                Program(
                    rules[:index] + [slimmer] + rules[index + 1:]
                ),
            )


def _query_atom_deletions(
    case: GeneratedCase,
) -> Iterable[GeneratedCase]:
    """Candidates with one query constraint atom removed."""
    atoms = case.query.constraint.atoms
    for drop in range(len(atoms)):
        yield GeneratedCase(
            program=case.program,
            query=Query(
                case.query.literal,
                Conjunction(atoms[:drop] + atoms[drop + 1:]),
            ),
            seed=case.seed,
            label=case.label,
            notes=case.notes,
        )


def shrink(
    case: GeneratedCase,
    fails: FailurePredicate,
    max_steps: int = 400,
) -> tuple[GeneratedCase, int]:
    """Greedily minimize ``case`` while ``fails`` stays true.

    Returns the minimized case and the number of accepted reductions.
    ``max_steps`` bounds the number of *candidate evaluations* so a
    flaky predicate cannot loop the reducer forever.
    """
    steps = 0
    evaluations = 0
    current = case
    improved = True
    while improved and evaluations < max_steps:
        improved = False
        for candidate in _candidates(current):
            evaluations += 1
            if evaluations > max_steps:
                break
            if fails(candidate):
                current = candidate
                steps += 1
                obs_count("conformance.shrink_steps")
                improved = True
                break
    return current, steps


def _candidates(case: GeneratedCase) -> Iterable[GeneratedCase]:
    yield from _rule_deletions(case)
    yield from _atom_deletions(case)
    yield from _query_atom_deletions(case)


def reproducer_name(case: GeneratedCase) -> str:
    """A stable filename for the case (content-hashed)."""
    digest = hashlib.sha256(case.text.encode()).hexdigest()[:10]
    seed = f"seed{case.seed}_" if case.seed is not None else ""
    return f"case_{seed}{digest}.cql"


def write_reproducer(
    case: GeneratedCase,
    directory: "str | Path",
    header: Iterable[str] = (),
    name: str | None = None,
) -> Path:
    """Write the case as a commented ``.cql`` reproducer; returns path."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / (name or reproducer_name(case))
    lines = [f"% conformance reproducer ({case.describe()})"]
    lines.extend(f"% {line}" for line in header)
    body = case.text
    path.write_text("\n".join(lines) + "\n" + body)
    return path
