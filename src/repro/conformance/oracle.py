"""A deliberately naive ground oracle for conformance checking.

This evaluator is the harness's ground truth, so it is built to be
*obviously* correct rather than fast, and it shares nothing with
:mod:`repro.engine`:

* facts are plain tuples of values in plain Python sets -- no
  :class:`~repro.engine.facts.Fact`, no relations, no indexes, no
  subsumption;
* rule application enumerates every combination of stored facts for
  the body literals (full naive iteration, recomputing everything each
  round) and, for variables bound by no body literal, every value of
  the case's finite constant domain;
* constraint atoms are evaluated by direct rational arithmetic on the
  candidate assignment -- the Fourier-Motzkin solver is never invoked.

On the generator's fragment (range-restricted rules, plain head
arguments, bounded domains) this computes exactly the least model
restricted to the reachable ground facts, and terminates because the
fact space is bounded by ``predicates x domain^arity``.  A ``max_facts``
fuse turns pathological blowups into :class:`OracleBudgetError` (the
differ skips such cases) instead of a hang.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.constraints.atom import Atom, Op
from repro.errors import ReproError
from repro.lang.ast import Literal, Program, Query, Rule
from repro.lang.normalize import normalize_program, normalize_query
from repro.lang.terms import NumTerm, Sym, Term, Var

#: Oracle values: symbol names are tagged strings, numbers Fractions.
OracleValue = "Fraction | str"


class OracleBudgetError(ReproError, RuntimeError):
    """The oracle's fact fuse blew (the case is too big to ground)."""

    code = "REPRO_ORACLE_BUDGET"
    exit_code = 3


def _atom_holds(atom: Atom, assignment: dict[str, Fraction]) -> bool:
    """Direct arithmetic evaluation (no solver) of one ground atom."""
    total = atom.expr.constant
    for name, coefficient in atom.expr.sorted_terms():
        value = assignment[name]
        if not isinstance(value, Fraction):
            # A numeric constraint over a symbol-valued variable can
            # never hold (sorts are disjoint).
            return False
        total += coefficient * value
    if atom.op is Op.EQ:
        return total == 0
    if atom.op is Op.LE:
        return total <= 0
    return total < 0  # Op.LT


def _constraints_hold(
    atoms: tuple[Atom, ...], assignment: dict[str, Fraction]
) -> bool:
    return all(_atom_holds(atom, assignment) for atom in atoms)


def _term_value(term: Term, assignment: dict) -> object | None:
    """The ground value of a literal argument, or None if unbound."""
    if isinstance(term, Var):
        return assignment.get(term.name)
    if isinstance(term, Sym):
        return term.name
    if isinstance(term, NumTerm) and term.is_constant():
        return term.value
    raise ValueError(
        f"oracle requires normalized literal arguments, got {term!r}"
    )


def _match_literal(
    literal: Literal,
    row: tuple,
    assignment: dict,
) -> dict | None:
    """Extend ``assignment`` so ``literal`` matches ``row``, or None."""
    extended = assignment
    for term, value in zip(literal.args, row):
        if isinstance(term, Var):
            bound = extended.get(term.name)
            if bound is None:
                if extended is assignment:
                    extended = dict(assignment)
                extended[term.name] = value
            elif bound != value:
                return None
        else:
            constant = _term_value(term, extended)
            if constant != value:
                return None
    return extended


def numeric_domain(program: Program, query: Query) -> list[Fraction]:
    """Every numeric constant occurring anywhere in the case.

    This is the finite domain over which variables unbound by body
    literals (constraint-only variables) are enumerated.
    """
    values: set[Fraction] = set()

    def visit_literal(literal: Literal) -> None:
        for term in literal.args:
            if isinstance(term, NumTerm) and term.is_constant():
                values.add(term.value)

    def visit_atoms(atoms: tuple[Atom, ...]) -> None:
        for atom in atoms:
            values.add(Fraction(-atom.expr.constant))

    for rule in program:
        visit_literal(rule.head)
        for literal in rule.body:
            visit_literal(literal)
        visit_atoms(rule.constraint.atoms)
    visit_literal(query.literal)
    visit_atoms(query.constraint.atoms)
    return sorted(values)


def _apply_rule(
    rule: Rule,
    facts: dict[str, set[tuple]],
    domain: list[Fraction],
) -> set[tuple]:
    """All head tuples derivable from ``facts`` in one application."""
    derived: set[tuple] = set()
    relations = [
        sorted(facts.get(literal.pred, ())) for literal in rule.body
    ]
    if any(not relation for relation in relations):
        return derived
    head_vars = {
        term.name for term in rule.head.args if isinstance(term, Var)
    }
    literal_vars: set[str] = set()
    for literal in rule.body:
        literal_vars |= literal.variables()
    loose = sorted(
        (head_vars | rule.constraint.variables()) - literal_vars
    )
    for rows in itertools.product(*relations):
        assignment: dict | None = {}
        for literal, row in zip(rule.body, rows):
            assignment = _match_literal(literal, row, assignment)
            if assignment is None:
                break
        if assignment is None:
            continue
        # Variables no literal bound range over the finite domain.
        for extra in itertools.product(domain, repeat=len(loose)):
            candidate = dict(assignment)
            candidate.update(zip(loose, extra))
            if not _constraints_hold(
                rule.constraint.atoms, candidate
            ):
                continue
            head = tuple(
                _term_value(term, candidate)
                for term in rule.head.args
            )
            if any(value is None for value in head):
                raise ValueError(
                    f"oracle cannot ground head of {rule} "
                    "(not range-restricted over the domain)"
                )
            derived.add(head)
    return derived


def oracle_answers(
    program: Program,
    query: Query,
    max_facts: int = 20_000,
) -> frozenset[tuple]:
    """The query's ground answer set by brute-force naive evaluation.

    Answers are tuples over the query's variables in sorted name order
    (the same convention as :func:`repro.engine.query.answers`); a
    variable-free query answers ``{()}`` for yes and ``frozenset()``
    for no.  Raises :class:`OracleBudgetError` when more than
    ``max_facts`` ground facts accumulate.
    """
    normalized = normalize_program(program)
    query = normalize_query(query)
    domain = numeric_domain(normalized, query)
    facts: dict[str, set[tuple]] = {}
    rules: list[Rule] = []
    for rule in normalized:
        if rule.is_fact and not rule.variables():
            if rule.constraint.atoms and not _constraints_hold(
                rule.constraint.atoms, {}
            ):
                continue
            row = tuple(
                _term_value(term, {}) for term in rule.head.args
            )
            facts.setdefault(rule.head.pred, set()).add(row)
        else:
            rules.append(rule)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            for row in _apply_rule(rule, facts, domain):
                stored = facts.setdefault(rule.head.pred, set())
                if row not in stored:
                    stored.add(row)
                    changed = True
        total = sum(len(stored) for stored in facts.values())
        if total > max_facts:
            raise OracleBudgetError(
                "facts", spent=total, limit=max_facts, phase="oracle"
            )
    return _extract_answers(query, facts, domain)


def _extract_answers(
    query: Query,
    facts: dict[str, set[tuple]],
    domain: list[Fraction],
) -> frozenset[tuple]:
    variables = sorted(query.variables())
    answers: set[tuple] = set()
    loose = sorted(
        set(variables) - query.literal.variables()
    )
    for row in sorted(facts.get(query.literal.pred, ())):
        assignment = _match_literal(query.literal, row, {})
        if assignment is None:
            continue
        for extra in itertools.product(domain, repeat=len(loose)):
            candidate = dict(assignment)
            candidate.update(zip(loose, extra))
            if not _constraints_hold(
                query.constraint.atoms, candidate
            ):
                continue
            answers.add(
                tuple(candidate[name] for name in variables)
            )
    return frozenset(answers)


def oracle_answer_strings(
    program: Program, query: Query, max_facts: int = 20_000
) -> frozenset[str]:
    """Answers rendered value-by-value (symbols as names, numbers as
    fraction strings) -- the differ's canonical comparison form."""
    return frozenset(
        "|".join(
            value if isinstance(value, str) else f"#{value}"
            for value in answer
        )
        for answer in oracle_answers(program, query, max_facts)
    )
