"""The delta-exchange loop: distributed semi-naive fixpoint in rounds.

One distributed evaluation advances every participating shard one
semi-naive iteration per *round*.  In round 0 each shard runs a cold
iteration over its own EDB partition (the specialized seed rule fires
there); in round ``r`` each shard folds the tuples other shards
derived in round ``r-1`` into its database as an external delta
(:func:`repro.engine.fixpoint.resume` with ``assume_delta``) and runs
exactly one more iteration, so a tuple derived anywhere is visible
everywhere one round later -- the distributed run explores the same
derivations as a single session, just interleaved.

Between rounds the coordinator plays switchboard: it collects every
shard's newly derived tuples, drops the ones already exchanged in an
earlier round (a global ``seen`` set over the canonical fact
encoding), and forwards each genuinely fresh tuple to every
participant that did not itself derive it this round.  The round
barrier declares *global fixpoint* only when no shard derived
anything new -- at that point every shard's local delta has been
processed and no tuple is in flight, because a tuple is always
delivered (and folded in) on the round immediately after it is
derived.

Budgets stay per shard: a shard whose meter trips reports the
exhausted resource in its round reply, and the loop stops immediately
with a truncated outcome instead of delivering further deltas --
mirroring the single-session governor's truncate-at-a-checkpoint
behaviour.  The loop itself is transport-agnostic (it only needs a
``scatter`` callable), which is what the shard test suite exploits to
drive it against in-process fakes.

Stragglers are the transport's problem, and the transport solves it:
the coordinator's ``scatter`` closure carries the request's remaining
deadline on every round frame and bounds each call with an op
timeout, so a participant that wedges mid-round fails the barrier
with :class:`~repro.errors.ShardError` within that bound instead of
stalling it forever.  The coordinator then respawns the dead
participants inline and retries the whole query once from
``q_start`` (every exchange round replays -- the fresh incarnations
hold no query state), counting ``shard.round_retries``; a second
failure surfaces as transient ``REPRO_SHARD``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.obs.recorder import count as obs_count
from repro.obs.recorder import span as obs_span


class WorkerReplyError(Exception):
    """A shard answered an exchange op with a ``REPRO_*`` error."""

    def __init__(self, shard: int, code: str, message: str) -> None:
        super().__init__(f"shard {shard}: [{code}] {message}")
        self.shard = shard
        self.code = code
        self.message = message


@dataclass
class ExchangeOutcome:
    """What one distributed evaluation's round loop did."""

    rounds: int
    exchanged: int
    truncated: str | None

    @property
    def fixpoint(self) -> bool:
        return self.truncated is None


def fact_key(entry: dict) -> str:
    """The canonical identity of an encoded fact (dedup key)."""
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def _checked(replies: Mapping[int, dict]) -> None:
    for shard, reply in sorted(replies.items()):
        if not reply.get("ok"):
            raise WorkerReplyError(
                shard,
                reply.get("error_code", "REPRO_INTERNAL"),
                reply.get("error_message", "shard op failed"),
            )


def run_exchange(
    scatter: Callable[[Mapping[int, dict]], Mapping[int, dict]],
    participants: Sequence[int],
    qid: str,
    max_rounds: int,
) -> ExchangeOutcome:
    """Drive one query's rounds to global fixpoint (module docstring).

    ``scatter`` sends one payload per participating shard and returns
    the replies keyed the same way; transport failures are its
    problem (the coordinator raises ``ShardError``), ``REPRO_*``
    error replies surface here as :class:`WorkerReplyError`.
    """
    participants = list(participants)
    seen: set[str] = set()
    deltas: dict[int, list[dict]] = {s: [] for s in participants}
    exchanged = 0
    truncated: str | None = None
    rounds = 0
    for number in range(max_rounds):
        with obs_span(
            "shard.round", round=number, participants=len(participants)
        ):
            replies = scatter({
                shard: {
                    "op": "q_round",
                    "qid": qid,
                    "round": number,
                    "facts": deltas[shard],
                }
                for shard in participants
            })
        _checked(replies)
        rounds = number + 1
        obs_count("shard.rounds")
        fresh: dict[str, tuple[dict, set[int]]] = {}
        any_new = False
        for shard, reply in sorted(replies.items()):
            if reply.get("exhausted") and truncated is None:
                truncated = str(reply["exhausted"])
            if reply.get("count"):
                any_new = True
            for entry in reply.get("new", ()):
                key = fact_key(entry)
                if key in seen:
                    continue
                record = fresh.setdefault(key, (entry, set()))
                record[1].add(shard)
        if truncated is not None:
            break  # stop delivering; the answer is already partial
        deltas = {shard: [] for shard in participants}
        for key, (entry, emitters) in fresh.items():
            seen.add(key)
            for shard in participants:
                if shard not in emitters:
                    deltas[shard].append(entry)
                    exchanged += 1
        if not any_new:
            break  # global fixpoint: nothing derived, nothing in flight
    else:
        truncated = "iterations"
    obs_count("shard.exchanged", exchanged)
    return ExchangeOutcome(
        rounds=rounds, exchanged=exchanged, truncated=truncated
    )
