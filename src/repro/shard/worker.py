"""The shard worker: one subprocess, one Session, one EDB partition.

``python -m repro.shard.worker`` is spawned by the coordinator with a
``hello`` frame naming its shard index, the program text, the routing
plan, session options, and (optionally) a snapshot directory and a
fault spec.  The worker keeps only the EDB facts the plan places on
its shard (owned + broadcast), builds a full
:class:`~repro.service.session.Session` over them, and then serves
frames (:mod:`repro.shard.protocol`) until EOF -- which is also how it
dies with its parent: a SIGKILLed coordinator closes the pipe and the
worker exits instead of lingering (with a force-exit watchdog in case
the main thread is wedged when the EOF arrives).  A *pump* thread
reads stdin and answers ``ping`` heartbeats immediately -- even while
the main thread grinds through a long op -- so the coordinator can
tell a slow worker from a dead one; every other frame is queued for
the main loop, and every reply echoes the request's ``id`` and
incarnation ``nonce`` for routing and fencing.

Queries are evaluated *in rounds* (:mod:`repro.shard.exchange`): the
coordinator steps every participating shard one semi-naive iteration
at a time (``q_round``), forwarding each round's newly derived tuples
to the shards that did not derive them, and gathers answers
(``q_answers``) once the round barrier reports a global fixpoint.
Each query runs under its own per-shard budget meter built from the
handshake's budget spec, and every request is error-isolated: a
``REPRO_*`` failure becomes an error reply, never a dead worker.

Durability reuses the serve machinery verbatim: the worker owns a
:class:`~repro.serve.snapshot.Snapshotter` over its per-shard
directory, appends every accepted load to its own WAL *before*
replying (the ack the coordinator forwards is the durable one), and
checkpoints on the coordinator's epoch barrier.  A failed append
flips the shard read-only, exactly like the single-session
supervisor.
"""

from __future__ import annotations

import argparse
import os
import queue
import sys
import threading
from contextlib import nullcontext
from dataclasses import replace

from repro import obs
from repro.driver import split_edb
from repro.engine import evaluate, resume
from repro.engine.query import answers as raw_answers
from repro.errors import ReproError, SnapshotError, UsageError
from repro.governor import Budget
from repro.governor import budget as governor
from repro.lang.ast import Query
from repro.lang.parser import parse_program, parse_query
from repro.obs.recorder import count as obs_count
from repro.serve.snapshot import Snapshotter, decode_fact, encode_fact
from repro.service.session import Session
from repro.shard.partition import ShardPlan
from repro.shard.protocol import (
    FrameError,
    garbled_frame,
    read_frame,
    write_frame,
)

#: Seconds a worker whose stdin reached EOF (its coordinator is gone)
#: waits for the main loop to drain before force-exiting.  Protects
#: against leaking an *orphan* whose main thread is wedged (a ``hang``
#: fault, a stuck op) and would otherwise never notice the EOF.
ORPHAN_GRACE = 10.0

_BUDGET_FIELDS = (
    "deadline",
    "max_iterations",
    "max_rewrite_iterations",
    "max_facts",
    "max_solver_calls",
)


class _EvalState:
    """One in-flight query's evaluation on this shard."""

    __slots__ = (
        "prepared", "meter", "database", "stamp", "warm_ok", "rounds",
    )

    def __init__(self, prepared, meter, warm_ok: bool) -> None:
        self.prepared = prepared
        self.meter = meter
        self.database = None
        self.stamp = 0
        self.warm_ok = warm_ok
        self.rounds = 0


class _WarmSlot:
    """A completed distributed evaluation kept for repeat queries."""

    __slots__ = ("database", "epoch")

    def __init__(self, database, epoch: int) -> None:
        self.database = database
        self.epoch = epoch


class ShardWorker:
    """The per-process request handler behind the frame loop."""

    def __init__(self, hello: dict) -> None:
        self.shard = int(hello["shard"])
        self.plan = ShardPlan.from_description(hello["plan"])
        program = parse_program(hello["program"])
        rules, edb = split_edb(program)
        owned = [
            fact
            for fact in edb.all_facts()
            if self.plan.placed_on(fact, self.shard)
        ]
        budget_spec = hello.get("budget") or None
        if budget_spec is not None:
            unknown = set(budget_spec) - set(_BUDGET_FIELDS)
            if unknown:
                raise UsageError(
                    f"unknown budget fields {sorted(unknown)}"
                )
            self.budget: Budget | None = Budget(**budget_spec)
        else:
            self.budget = None
        self.session = Session(
            rules,
            strategy=hello.get("strategy", "rewrite"),
            max_iterations=int(hello.get("max_iterations", 20)),
            eval_iterations=int(hello.get("eval_iterations", 200)),
            budget=None,  # metering is per round, not per Session call
            on_limit=hello.get("on_limit", "truncate"),
            cache_size=int(hello.get("cache_size", 64)),
        )
        self.session.restore_state(owned, 0)
        self.eval_iterations = int(hello.get("eval_iterations", 200))
        self.snapshotter: Snapshotter | None = None
        if hello.get("snapshot_dir"):
            self.snapshotter = Snapshotter(
                hello["snapshot_dir"], hello.get("program_id", "?")
            )
        self._evals: dict[str, _EvalState] = {}
        self._warm: dict[tuple[str, str], _WarmSlot] = {}
        self._degraded: str | None = None
        self.counters = {
            "queries": 0,
            "rounds": 0,
            "emitted": 0,
            "received": 0,
            "warm_hits": 0,
            "loads": 0,
        }
        self._ops = {
            "recover": self._op_recover,
            "load": self._op_load,
            "checkpoint": self._op_checkpoint,
            "q_start": self._op_q_start,
            "q_round": self._op_q_round,
            "q_answers": self._op_q_answers,
            "q_finish": self._op_q_finish,
            "stats": self._op_stats,
            "healthz": self._op_healthz,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }

    def hello_reply(self) -> dict:
        return {
            "ok": True,
            "shard": self.shard,
            "edb_facts": self.session.edb.count(),
        }

    # -- dispatch -----------------------------------------------------

    def handle(self, frame: dict) -> dict:
        op = frame.get("op")
        handler = self._ops.get(op)
        if handler is None:
            return self._error(UsageError(f"unknown op {op!r}"))
        try:
            return handler(frame)
        except ReproError as error:
            return self._error(error)
        except ValueError as error:
            # Mirror Session.query: bad query shapes (e.g. a magic
            # rewrite of an EDB predicate) are usage errors.
            return self._error(UsageError(str(error)))
        except Exception as error:  # isolation: reply, don't die
            return {
                "ok": False,
                "error_code": "REPRO_INTERNAL",
                "error_message": (
                    f"shard {self.shard} {op} failed: {error}"
                ),
            }

    def _error(self, error: ReproError) -> dict:
        return {
            "ok": False,
            "error_code": error.code,
            "error_message": str(error),
        }

    # -- durability ---------------------------------------------------

    def _op_recover(self, frame: dict) -> dict:
        if self.snapshotter is None:
            return {
                "ok": True, "recovery": None,
                "epoch": self.session.epoch,
            }
        summary = self.snapshotter.recover(self.session)
        return {
            "ok": True,
            "recovery": summary,
            "epoch": self.session.epoch,
        }

    def _op_load(self, frame: dict) -> dict:
        if self._degraded is not None:
            return self._error(SnapshotError(
                f"fact load refused: shard {self.shard} durability "
                f"lost ({self._degraded}); serving read-only"
            ))
        facts = [decode_fact(entry) for entry in frame["facts"]]
        response = self.session.add_facts(facts)
        if not response.ok:
            return {
                "ok": False,
                "error_code": response.error_code,
                "error_message": response.error_message,
            }
        self.counters["loads"] += 1
        if response.loaded and self.snapshotter is not None:
            try:
                self.snapshotter.append_log(
                    response.epoch, response.loaded
                )
            except OSError as error:
                self._degraded = f"WAL append failed: {error}"
                return self._error(SnapshotError(
                    f"fact load not durable on shard {self.shard} "
                    f"(WAL append failed: {error}); shard read-only"
                ))
        return {
            "ok": True,
            "added": response.added,
            "new": [encode_fact(fact) for fact in response.loaded],
            "epoch": response.epoch,
        }

    def _op_checkpoint(self, frame: dict) -> dict:
        if self.snapshotter is None:
            return {"ok": True, "epoch": self.session.epoch}
        if self._degraded is not None:
            return self._error(SnapshotError(
                f"checkpoint refused: shard {self.shard} degraded "
                f"({self._degraded})"
            ))
        epoch, facts = self.session.export_state()
        try:
            self.snapshotter.snapshot(
                epoch,
                facts,
                planner_records=self.session.export_planner(),
            )
        except OSError as error:
            self._degraded = f"checkpoint failed: {error}"
            return self._error(SnapshotError(
                f"checkpoint failed on shard {self.shard}: {error}"
            ))
        return {"ok": True, "epoch": epoch}

    # -- query evaluation ---------------------------------------------

    def _meter(self, frame: dict | None = None):
        """A fresh meter, clamped to the frame's propagated deadline.

        The coordinator sends ``deadline_left`` -- the request's
        remaining wall-clock budget minus slack -- on each query op,
        so a query that arrives with most of its budget already spent
        trips *here*, as a ``truncated:deadline`` reply, rather than
        running to the full per-shard deadline and being declared
        hung coordinator-side.
        """
        if self.budget is None:
            return None
        budget = self.budget
        left = frame.get("deadline_left") if frame else None
        if left is not None and budget.deadline is not None:
            left = float(left)
            if left < budget.deadline:
                budget = replace(budget, deadline=left)
        return budget.meter()

    def _governed(self, meter):
        return (
            governor.governed(meter)
            if meter is not None
            else nullcontext()
        )

    def _op_q_start(self, frame: dict) -> dict:
        query = parse_query(frame["query"])
        meter = self._meter(frame)
        with self._governed(meter):
            prepared = self.session.prepare(query)
        key = (str(prepared.form), str(prepared.seed or ""))
        slot = self._warm.get(key)
        warm_ok = (
            slot is not None and slot.epoch == self.session.epoch
        )
        self._evals[frame["qid"]] = _EvalState(
            prepared, meter, warm_ok
        )
        self.counters["queries"] += 1
        obs_count("shard.worker_queries")
        return {
            "ok": True,
            "warm": warm_ok,
            "form": str(prepared.form),
            "cached": prepared.cached,
            "notes": list(prepared.compiled.notes),
            "fallbacks": list(prepared.compiled.fallbacks),
        }

    def _state(self, frame: dict) -> _EvalState:
        state = self._evals.get(frame["qid"])
        if state is None:
            raise UsageError(
                f"unknown query id {frame['qid']!r} on shard "
                f"{self.shard}"
            )
        return state

    def _op_q_round(self, frame: dict) -> dict:
        state = self._state(frame)
        number = int(frame["round"])
        incoming = [
            decode_fact(entry) for entry in frame.get("facts", ())
        ]
        self.counters["received"] += len(incoming)
        self.counters["rounds"] += 1
        state.rounds += 1
        with self._governed(state.meter):
            if number == 0 or state.database is None:
                # Round 0: one cold iteration over the local
                # partition; the specialized seed rule fires here.
                result = evaluate(
                    state.prepared.specialized,
                    self.session.edb,
                    max_iterations=1,
                    budget=state.meter,
                )
                state.database = result.database
                state.stamp = 1
            else:
                result = resume(
                    state.prepared.specialized,
                    state.database,
                    incoming,
                    start_stamp=state.stamp,
                    max_iterations=1,
                    budget=state.meter,
                    assume_delta=True,
                )
                state.stamp += 1
        fresh = [
            fact
            for log in result.iterations
            for fact in log.new_facts()
        ]
        self.counters["emitted"] += len(fresh)
        exhausted = (
            state.meter.exhausted if state.meter is not None else None
        )
        return {
            "ok": True,
            "new": [encode_fact(fact) for fact in fresh],
            "count": len(fresh),
            "exhausted": exhausted,
        }

    def _op_q_answers(self, frame: dict) -> dict:
        state = self._state(frame)
        prepared = state.prepared
        if state.database is None:
            key = (str(prepared.form), str(prepared.seed or ""))
            slot = self._warm.get(key)
            if not state.warm_ok or slot is None:
                raise UsageError(
                    f"q_answers before any round on shard "
                    f"{self.shard} (no warm state)"
                )
            database = slot.database
            self.counters["warm_hits"] += 1
            obs_count("shard.worker_warm_hits")
        else:
            database = state.database
        meter = state.meter
        paused = (
            meter.paused() if meter is not None else self._governed(None)
        )
        with paused:
            found = raw_answers(
                database,
                self._effective_query(frame["query"], prepared),
            )
        return {
            "ok": True,
            "answers": [encode_fact(fact) for fact in found],
            "exhausted": (
                meter.exhausted if meter is not None else None
            ),
        }

    def _effective_query(self, text: str, prepared) -> Query:
        query = parse_query(text)
        return Query(
            query.literal.with_pred(prepared.compiled.query_pred),
            query.constraint,
        )

    def _op_q_finish(self, frame: dict) -> dict:
        state = self._evals.pop(frame["qid"], None)
        if (
            state is not None
            and state.database is not None
            and frame.get("keep_warm")
        ):
            key = (
                str(state.prepared.form),
                str(state.prepared.seed or ""),
            )
            self._warm[key] = _WarmSlot(
                state.database, self.session.epoch
            )
            # Bound the slot table: warm states are per (form, seed).
            while len(self._warm) > 4 * self.session.cache.capacity:
                self._warm.pop(next(iter(self._warm)))
        return {"ok": True}

    # -- inspection ---------------------------------------------------

    def _op_stats(self, frame: dict) -> dict:
        return {
            "ok": True,
            "shard": self.shard,
            "counters": dict(self.counters),
            "degraded": self._degraded,
            "session": self.session.stats(),
        }

    def _op_healthz(self, frame: dict) -> dict:
        return {
            "ok": True,
            "shard": self.shard,
            "status": "degraded" if self._degraded else "ok",
            "epoch": self.session.epoch,
            "edb_facts": self.session.edb.count(),
            "durability": (
                "none" if self.snapshotter is None
                else "degraded" if self._degraded
                else "ok"
            ),
        }

    def _op_ping(self, frame: dict) -> dict:
        """Liveness echo (normally answered by the pump thread)."""
        return {"ok": True, "shard": self.shard, "pong": True}

    def _op_shutdown(self, frame: dict) -> dict:
        if self.snapshotter is not None and self._degraded is None:
            try:
                self._op_checkpoint(frame)
            except OSError:
                pass  # shutting down anyway; the WAL has every epoch
        return {"ok": True, "shard": self.shard, "stopping": True}


def _echo(frame: dict, reply: dict) -> dict:
    """Tag a reply with the request's routing id and fencing nonce."""
    if "id" in frame:
        reply["id"] = frame["id"]
    if "nonce" in frame:
        reply["nonce"] = frame["nonce"]
    return reply


def _arm_orphan_watchdog(grace: float | None) -> None:
    """Force-exit soon if the main loop never drains the EOF.

    Armed by the pump thread when stdin closes: the coordinator is
    gone, and a main thread wedged in an op (a ``hang`` fault, a
    deadlock) would otherwise leak a headless worker forever.
    ``None`` disables it (in-process tests share our interpreter).
    """
    if grace is None:
        return
    watchdog = threading.Timer(grace, os._exit, args=(0,))
    watchdog.daemon = True
    watchdog.start()


def _write_reply(stdout, stdout_lock, frame: dict, reply: dict,
                 recorder) -> bool:
    """Write one reply frame; survivable encode failures stay alive.

    A ``FrameError`` raised while *writing* (an answer payload over
    the frame cap) is answered with a ``REPRO_USAGE`` error reply
    instead of killing the worker -- the request was bad, the worker
    is fine.  The ``garble:<op>`` fault fires here, corrupting the
    encoded frame so the coordinator's CRC check must reject it.
    """
    op = frame.get("op", "?")
    consume = getattr(recorder, "consume", None)
    garble = consume is not None and consume(
        "garble", f"shard.reply.{op}"
    )
    with stdout_lock:
        try:
            if garble:
                stdout.write(garbled_frame(reply))
                stdout.flush()
            else:
                write_frame(stdout, reply)
            return True
        except FrameError as error:
            fallback = _echo(frame, {
                "ok": False,
                "error_code": "REPRO_USAGE",
                "error_message": (
                    f"reply to {op} is not encodable: {error}"
                ),
            })
            try:
                write_frame(stdout, fallback)
                return True
            except (OSError, FrameError):
                return False
        except OSError:
            return False


def _pump(worker: ShardWorker, stdin, stdout, stdout_lock,
          frames: "queue.Queue",
          orphan_grace: float | None) -> None:
    """Read frames off stdin, answering pings in-line.

    Runs as a daemon thread so ``ping`` gets an answer even while the
    main thread is deep in a long op -- which is exactly what lets
    the coordinator tell *slow* (pings answered, op deadline governs)
    from *dead* (pings missed, SIGKILL now).  Everything else is
    queued for the main loop; EOF and frame corruption are queued as
    sentinels, with the orphan watchdog armed in case the main loop
    never drains them.
    """
    while True:
        try:
            frame = read_frame(stdin)
        except (OSError, ValueError) as error:
            frames.put(FrameError(str(error)))
            _arm_orphan_watchdog(orphan_grace)
            return
        except FrameError as error:
            frames.put(error)
            _arm_orphan_watchdog(orphan_grace)
            return
        if frame is None:
            frames.put(None)
            _arm_orphan_watchdog(orphan_grace)
            return
        if frame.get("op") == "ping":
            obs_count("shard.op.ping")
            reply = _echo(frame, {
                "ok": True, "shard": worker.shard, "pong": True,
            })
            with stdout_lock:
                try:
                    write_frame(stdout, reply)
                except (OSError, FrameError):
                    frames.put(None)
                    return
            continue
        frames.put(frame)


def serve_frames(
    stdin, stdout, orphan_grace: float | None = ORPHAN_GRACE
) -> int:
    """The worker loop: handshake, then one reply per request."""
    hello = read_frame(stdin)
    if hello is None or hello.get("op") != "hello":
        print(
            "repro shard worker: expected hello frame",
            file=sys.stderr,
        )
        return 2
    try:
        worker = ShardWorker(hello)
    except (ReproError, ValueError) as error:
        write_frame(stdout, {
            "ok": False,
            "error_code": getattr(error, "code", "REPRO_USAGE"),
            "error_message": str(error),
        })
        return 2
    recorder = obs.get_recorder()
    if hello.get("faults"):
        from repro.governor import FaultPlan, FaultyRecorder

        recorder = FaultyRecorder(
            FaultPlan.from_spec(hello["faults"]), inner=recorder
        )
    write_frame(stdout, worker.hello_reply())
    stdout_lock = threading.Lock()
    frames: "queue.Queue" = queue.Queue()
    with obs.recording(recorder):
        pump = threading.Thread(
            target=_pump,
            args=(worker, stdin, stdout, stdout_lock, frames,
                  orphan_grace),
            name=f"shard-{worker.shard}-pump",
            daemon=True,
        )
        pump.start()
        while True:
            frame = frames.get()
            if frame is None:
                return 0  # coordinator gone: die with the parent
            if isinstance(frame, FrameError):
                print(
                    f"repro shard worker {worker.shard}: {frame}",
                    file=sys.stderr,
                )
                return 1
            op = frame.get("op", "?")
            # The frame-seam announcement: ``hang:<op>`` faults fire
            # here, pinning this thread while pings stay answered.
            obs_count(f"shard.op.{op}")
            reply = _echo(frame, worker.handle(frame))
            if not _write_reply(
                stdout, stdout_lock, frame, reply, recorder
            ):
                return 1
            if op == "shutdown":
                return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.shard.worker")
    parser.add_argument(
        "--shard",
        type=int,
        default=-1,
        help="shard index (cosmetic: makes the process findable)",
    )
    parser.parse_args(argv)
    return serve_frames(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":
    raise SystemExit(main())
