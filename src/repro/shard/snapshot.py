"""Cluster manifests: the consistent cross-shard checkpoint record.

Each shard worker is individually crash-safe -- it owns a full
:class:`~repro.serve.snapshot.Snapshotter` (WAL + checksummed
snapshots + quarantine) over its ``shard-NN/`` subdirectory.  What a
*cluster* additionally needs is a consistency cut: proof that the
per-shard states it restores belong to the same moment.  The
coordinator provides the cut operationally (a checkpoint runs under
the exclusive load lock, so no load is half-applied across shards)
and this module records it durably: after every checkpoint barrier a
``manifest-<generation>.json`` is written in the cluster's snapshot
root whose ``shards`` section maps each shard to the epoch it
checkpointed at.

Recovery restores every shard independently (snapshot + WAL replay,
reusing the serve quarantine paths for damage), then compares the
recovered epochs against the newest verifiable manifest: the cut is
*consistent* when every shard recovered to at least its manifest
epoch -- a shard's WAL may legitimately carry it past the barrier
(loads acked after the last checkpoint), but falling short means that
shard lost acknowledged, manifest-covered loads.  Manifests follow
the snapshot file discipline exactly: canonical-JSON CRC, atomic
write + directory fsync, three retained generations, corrupt files
quarantined to ``corrupt/`` rather than trusted or deleted.
"""

from __future__ import annotations

import json
import os
import re
from typing import Mapping

from repro.errors import SnapshotError
from repro.obs.recorder import count as obs_count
from repro.serve.snapshot import (
    CORRUPT_DIR,
    RETAIN_SNAPSHOTS,
    SCHEMA,
    _canonical,
    _crc,
    _fsync_dir,
)

#: Cluster manifests share the snapshot schema with their own kind tag.
MANIFEST_KIND = "shard-manifest"

_MANIFEST_RE = re.compile(r"^manifest-(\d{8})\.json$")


def shard_directory(root: str, shard: int) -> str:
    """Where one shard's Snapshotter lives under the cluster root."""
    return os.path.join(root, f"shard-{shard:02d}")


def manifest_name(generation: int) -> str:
    return f"manifest-{generation:08d}.json"


def build_manifest(
    program_id: str,
    generation: int,
    shard_count: int,
    epochs: Mapping[int, int],
) -> dict:
    """The manifest payload (CRC over everything but the CRC field)."""
    payload = {
        "schema": SCHEMA,
        "kind": MANIFEST_KIND,
        "program_sha": program_id,
        "generation": generation,
        "shard_count": shard_count,
        "shards": {
            str(shard): int(epoch)
            for shard, epoch in sorted(epochs.items())
        },
        "global_epoch": sum(int(e) for e in epochs.values()),
    }
    payload["crc"] = _crc(_canonical(payload))
    return payload


def write_manifest(
    directory: str,
    program_id: str,
    generation: int,
    shard_count: int,
    epochs: Mapping[int, int],
) -> str:
    """Durably record one checkpoint barrier; prunes old generations."""
    os.makedirs(directory, exist_ok=True)
    payload = build_manifest(
        program_id, generation, shard_count, epochs
    )
    name = manifest_name(generation)
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(_canonical(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)
    for __, old_name in _manifest_files(directory)[:-RETAIN_SNAPSHOTS]:
        try:
            os.unlink(os.path.join(directory, old_name))
        except OSError:
            pass
    obs_count("shard.manifests_written")
    return path


def _manifest_files(directory: str) -> list[tuple[int, str]]:
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        match = _MANIFEST_RE.match(name)
        if match:
            found.append((int(match.group(1)), name))
    return sorted(found)


def _quarantine(directory: str, path: str) -> None:
    corrupt_dir = os.path.join(directory, CORRUPT_DIR)
    os.makedirs(corrupt_dir, exist_ok=True)
    destination = os.path.join(corrupt_dir, os.path.basename(path))
    suffix = 0
    while os.path.exists(destination):
        suffix += 1
        destination = os.path.join(
            corrupt_dir, f"{os.path.basename(path)}.{suffix}"
        )
    os.replace(path, destination)


def _verify(payload: dict) -> None:
    recorded = payload.get("crc")
    probe = dict(payload)
    probe.pop("crc", None)
    probe["crc"] = _crc(_canonical(probe))
    if not isinstance(recorded, str) or probe["crc"] != recorded:
        raise ValueError("manifest checksum mismatch")


def latest_manifest(
    directory: str, program_id: str
) -> tuple[dict | None, list[str]]:
    """The newest verifiable manifest, plus names quarantined en route.

    Walks backward through retained generations; unreadable or
    checksum-failed manifests are quarantined and the walk falls back
    to the next-newest.  A manifest for a different program is a hard
    :class:`~repro.errors.SnapshotError`, mirroring the per-shard
    snapshot rules -- restoring another program's cut would silently
    corrupt every shard at once.
    """
    quarantined: list[str] = []
    for __, name in reversed(_manifest_files(directory)):
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("manifest payload must be an object")
            _verify(payload)
        except OSError:
            continue
        except ValueError:
            _quarantine(directory, path)
            quarantined.append(name)
            obs_count("shard.manifests_quarantined")
            continue
        if (
            payload.get("schema") != SCHEMA
            or payload.get("kind") != MANIFEST_KIND
        ):
            raise SnapshotError(
                f"{name}: unknown manifest schema "
                f"{payload.get('schema')!r}/{payload.get('kind')!r}"
            )
        if payload.get("program_sha") != program_id:
            raise SnapshotError(
                f"{name}: cluster manifest was taken for a different "
                f"program (sha {payload.get('program_sha')}, running "
                f"{program_id})"
            )
        return payload, quarantined
    return None, quarantined


def reconcile(
    manifest: dict | None, epochs: Mapping[int, int]
) -> dict:
    """Compare recovered per-shard epochs against the manifest cut."""
    if manifest is None:
        return {
            "generation": None,
            "consistent": True,
            "behind": [],
        }
    behind = []
    floor = manifest.get("shards", {})
    for shard_text, manifest_epoch in sorted(floor.items()):
        shard = int(shard_text)
        if epochs.get(shard, 0) < int(manifest_epoch):
            behind.append({
                "shard": shard,
                "recovered_epoch": epochs.get(shard, 0),
                "manifest_epoch": int(manifest_epoch),
            })
    return {
        "generation": manifest.get("generation"),
        "consistent": not behind,
        "behind": behind,
    }
