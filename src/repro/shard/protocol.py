"""Length-prefixed JSON frames between coordinator and shard workers.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The explicit length (rather than line framing)
makes a half-written frame detectable: a worker killed mid-write
leaves a short read, which surfaces as :class:`FrameError` instead of
a parse of garbage.  Frames are capped at :data:`MAX_FRAME` so a
corrupted length prefix cannot make the reader allocate gigabytes.

The coordinator speaks this protocol over each worker's stdin/stdout
pipe pair; workers answer one reply frame per request frame, in
order.  Fact payloads ride the snapshot codec
(:func:`repro.serve.snapshot.encode_fact`) so constraint facts
round-trip exactly.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO

#: Upper bound on one frame's JSON payload (64 MiB).
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(Exception):
    """The stream ended mid-frame or carried an invalid frame."""


def write_frame(stream: BinaryIO, payload: dict) -> None:
    """Serialize one frame and flush it."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds cap {MAX_FRAME}"
        )
    stream.write(_LENGTH.pack(len(data)) + data)
    stream.flush()


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise FrameError(
                f"stream closed {remaining} bytes short of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict | None:
    """The next frame, or ``None`` at a clean end of stream."""
    header = stream.read(_LENGTH.size)
    if not header:
        return None  # clean EOF between frames
    if len(header) < _LENGTH.size:
        raise FrameError("stream closed inside a frame header")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(
            f"frame length {length} exceeds cap {MAX_FRAME}"
        )
    data = _read_exact(stream, length)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be an object, got {type(payload)}"
        )
    return payload
