"""Checksummed length-prefixed JSON frames between coordinator and
shard workers.

One frame is an 8-byte big-endian header -- a 4-byte payload length
followed by the CRC32 of the payload -- and then that many bytes of
UTF-8 JSON.  The explicit length (rather than line framing) makes a
half-written frame detectable: a worker killed mid-write leaves a
short read, which surfaces as :class:`FrameError` instead of a parse
of garbage.  The CRC makes *damaged* frames detectable: a bit flipped
anywhere in the stream (a garbling transport fault, a worker that
scribbled on its own stdout) fails verification instead of parsing to
a plausible-but-wrong payload.  Frames are capped at
:data:`MAX_FRAME` so a corrupted length prefix cannot make the reader
allocate gigabytes.

The coordinator speaks this protocol over each worker's stdin/stdout
pipe pair.  Request frames carry a per-client ``id`` (echoed by the
reply, so a multiplexed reader can route concurrent calls -- the
heartbeat ``ping`` rides the same pipe as a long-running op) and the
worker incarnation ``nonce`` (echoed so replies from a killed
incarnation are fenced instead of being credited to its successor).
Fact payloads ride the snapshot codec
(:func:`repro.serve.snapshot.encode_fact`) so constraint facts
round-trip exactly.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO

#: Upper bound on one frame's JSON payload (64 MiB).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">II")  # payload length, payload CRC32


class FrameError(Exception):
    """The stream ended mid-frame or carried an invalid frame."""


def write_frame(stream: BinaryIO, payload: dict) -> None:
    """Serialize one frame and flush it."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds cap {MAX_FRAME}"
        )
    stream.write(_HEADER.pack(len(data), zlib.crc32(data)) + data)
    stream.flush()


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise FrameError(
                f"stream closed {remaining} bytes short of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> dict | None:
    """The next frame, or ``None`` at a clean end of stream."""
    header = stream.read(_HEADER.size)
    if not header:
        return None  # clean EOF between frames
    while len(header) < _HEADER.size:
        more = stream.read(_HEADER.size - len(header))
        if not more:
            raise FrameError("stream closed inside a frame header")
        header += more
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(
            f"frame length {length} exceeds cap {MAX_FRAME}"
        )
    data = _read_exact(stream, length)
    if zlib.crc32(data) != crc:
        raise FrameError(
            f"frame checksum mismatch over {length} bytes"
        )
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be an object, got {type(payload)}"
        )
    return payload


def garbled_frame(payload: dict) -> bytes:
    """A deliberately corrupted encoding of ``payload``.

    Used by the ``garble:<op>`` protocol fault: the frame is built
    normally and then one payload byte is flipped, so the reader's CRC
    check must reject it -- exercising exactly the detection path a
    real scribbled pipe would take.
    """
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    flipped = bytearray(data)
    flipped[len(flipped) // 2] ^= 0xFF
    return _HEADER.pack(len(data), zlib.crc32(data)) + bytes(flipped)
