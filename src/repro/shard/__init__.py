"""Sharded multi-process serving: the cluster behind one session.

The package splits the EDB across ``N`` worker subprocesses by a
deterministic shard key (:mod:`~repro.shard.partition`), runs the
semi-naive fixpoint as a distributed round protocol that exchanges
each round's newly derived tuples between shards
(:mod:`~repro.shard.exchange` driving
:mod:`~repro.shard.worker` over length-prefixed JSON frames,
:mod:`~repro.shard.protocol`), and presents the whole fleet behind
the single-session surface the serve supervisor already speaks
(:mod:`~repro.shard.coordinator`).  Cross-shard durability -- per-
shard WALs stitched into a consistent checkpoint by cluster
manifests -- lives in :mod:`~repro.shard.snapshot`.

Wired up as ``repro serve program.cql --shards N``.
"""

from repro.shard.coordinator import (
    ShardClient,
    ShardCoordinator,
    ShardedEngine,
    ShardedSession,
)
from repro.shard.exchange import ExchangeOutcome, run_exchange
from repro.shard.partition import (
    PartitionSpec,
    PlanNote,
    ShardPlan,
    build_plan,
    parse_partition_keys,
    stable_hash,
)

__all__ = [
    "ExchangeOutcome",
    "PartitionSpec",
    "PlanNote",
    "ShardClient",
    "ShardCoordinator",
    "ShardPlan",
    "ShardedEngine",
    "ShardedSession",
    "build_plan",
    "parse_partition_keys",
    "run_exchange",
    "stable_hash",
]
