"""Scatter-gather over shard workers: the cluster behind one session.

:class:`ShardCoordinator` spawns ``N`` worker subprocesses
(:mod:`repro.shard.worker`), hands each the program text plus the
routing plan (:func:`repro.shard.partition.build_plan`), and then
presents the whole cluster behind the single-session surface the
serve supervisor already speaks: :class:`ShardedEngine` /
:class:`ShardedSession` duck-type ``Engine``/``Session`` closely
enough that :class:`repro.serve.supervisor.Supervisor` needs no
changes -- admission queue, retries, and the per-form circuit breaker
wrap the sharded engine exactly as they wrap a local one.

Request discipline mirrors the session's reader-writer rules
(:class:`~repro.service.sync.RWLock`): queries scatter under the
shared lock (any number in flight, multiplexed over the worker pipes
by query id), fact loads and checkpoint barriers run exclusively --
which is precisely what makes the cross-shard checkpoint a consistent
cut (:mod:`repro.shard.snapshot`).  A query is routed to the one
shard owning its bound key when the plan can prove that
(:meth:`~repro.shard.partition.ShardPlan.seed_shards` -- the magic
seed's constants picking the shard), and broadcast otherwise; rounds
then run the delta-exchange loop (:mod:`repro.shard.exchange`) and
answers are gathered, deduplicated, and deterministically ordered.

Failure policy: a dead worker pipe raises
:class:`~repro.errors.ShardError`, which fails only the requests
touching that shard; the next request respawns the worker and (when
durable) replays its per-shard WAL before serving.  Loads are never
silently retried -- the caller sees the error and decides, exactly as
with the single-session WAL ack.
"""

from __future__ import annotations

import itertools
import os
import subprocess
import sys
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, replace
from typing import Iterable, Mapping

from repro.driver import split_edb
from repro.engine.facts import Fact
from repro.errors import ReproError, ShardError, UsageError
from repro.governor import Budget
from repro.lang.ast import Query
from repro.lang.parser import parse_program_and_queries
from repro.obs.recorder import count as obs_count
from repro.obs.recorder import span as obs_span
from repro.serve.snapshot import decode_fact, encode_fact, program_sha
from repro.service.session import Response
from repro.service.sync import RWLock
from repro.shard import snapshot as cluster_snapshot
from repro.shard.exchange import (
    WorkerReplyError,
    fact_key,
    run_exchange,
)
from repro.shard.partition import build_plan
from repro.shard.protocol import FrameError, read_frame, write_frame


def _checked(replies: Mapping[int, dict]) -> None:
    for shard, reply in sorted(replies.items()):
        if not reply.get("ok"):
            raise WorkerReplyError(
                shard,
                reply.get("error_code", "REPRO_INTERNAL"),
                reply.get("error_message", "shard op failed"),
            )


class ShardClient:
    """One worker subprocess and its frame pipe, spawnable anew."""

    def __init__(self, shard: int, hello: dict) -> None:
        self.shard = shard
        self._hello = dict(hello, op="hello", shard=shard)
        self._lock = threading.Lock()
        self.process: subprocess.Popen | None = None
        self.alive = False
        self.deaths = 0

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def spawn(self) -> dict:
        """Start (or restart) the worker and complete the handshake."""
        # The worker must import ``repro`` even when the coordinator
        # found it through sys.path manipulation (tests, benchmark
        # scripts) rather than an installed package or PYTHONPATH.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        paths = env.get("PYTHONPATH", "").split(os.pathsep)
        if package_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join(
                [package_root] + [path for path in paths if path]
            )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.shard.worker",
                "--shard",
                str(self.shard),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the coordinator's stderr
            env=env,
        )
        try:
            write_frame(self.process.stdin, self._hello)
            reply = read_frame(self.process.stdout)
        except (OSError, FrameError) as error:
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard} worker failed to start: {error}"
            ) from None
        if reply is None or not reply.get("ok"):
            detail = (
                "died during handshake"
                if reply is None
                else f"rejected handshake: {reply.get('error_message')}"
            )
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard} worker {detail}"
            )
        self.alive = True
        return reply

    def _mark_dead(self) -> None:
        if self.alive:
            self.deaths += 1
            obs_count("shard.worker_deaths")
        self.alive = False

    def call(self, payload: dict) -> dict:
        """One request frame, one reply frame, serialized per pipe."""
        with self._lock:
            if not self.alive or self.process is None:
                raise ShardError(
                    f"shard {self.shard} worker is down"
                )
            try:
                write_frame(self.process.stdin, payload)
                reply = read_frame(self.process.stdout)
            except (OSError, FrameError) as error:
                self._mark_dead()
                raise ShardError(
                    f"shard {self.shard} worker transport failed "
                    f"(pid {self.pid}): {error}"
                ) from None
            if reply is None:
                self._mark_dead()
                raise ShardError(
                    f"shard {self.shard} worker died (pid {self.pid})"
                )
            return reply

    def close(self, graceful: bool = True) -> None:
        """Shut the worker down; escalate to SIGKILL if it lingers."""
        process = self.process
        if process is None:
            return
        if graceful and self.alive:
            try:
                self.call({"op": "shutdown"})
            except ShardError:
                pass
        self.alive = False
        for stream in (process.stdin, process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class ShardCoordinator:
    """The cluster: routing plan, worker fleet, and request surface."""

    def __init__(
        self,
        text: str,
        shards: int,
        *,
        strategy: str = "rewrite",
        max_iterations: int = 20,
        eval_iterations: int = 200,
        cache_size: int = 64,
        on_limit: str = "truncate",
        budget: Budget | None = None,
        snapshot_dir: str | None = None,
        snapshot_every: int = 8,
        faults: str | None = None,
        partition_keys: dict[str, int] | None = None,
        partition_ranges: dict[str, tuple] | None = None,
    ) -> None:
        if shards < 1:
            raise UsageError(f"shard count must be >= 1: {shards}")
        program, __ = parse_program_and_queries(text)
        rules, edb = split_edb(program)
        self.plan, self.plan_notes = build_plan(
            rules,
            edb,
            shards,
            keys=partition_keys,
            ranges=partition_ranges,
        )
        self.shards = shards
        self.program_id = program_sha(text)
        self.snapshot_dir = snapshot_dir
        self.snapshot_every = snapshot_every
        self.eval_iterations = eval_iterations
        self.cache_size = cache_size
        self.on_limit = on_limit
        program_text = "\n".join(str(rule) for rule in program)
        budget_spec = (
            None
            if budget is None or budget.is_unlimited()
            else asdict(budget)
        )
        hello = {
            "program": program_text,
            "plan": self.plan.describe(),
            "strategy": strategy,
            "max_iterations": max_iterations,
            "eval_iterations": eval_iterations,
            "cache_size": cache_size,
            "on_limit": on_limit,
            "budget": budget_spec,
            "program_id": self.program_id,
            "faults": faults,
        }
        self._clients = [
            ShardClient(
                shard,
                dict(
                    hello,
                    snapshot_dir=(
                        cluster_snapshot.shard_directory(
                            snapshot_dir, shard
                        )
                        if snapshot_dir
                        else None
                    ),
                ),
            )
            for shard in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-scatter"
        )
        self._rw = RWLock()
        self._cache_lock = threading.Lock()
        self._answers: OrderedDict[str, tuple[int, Response]] = (
            OrderedDict()
        )
        self._qids = itertools.count(1)
        self._epochs = {shard: 0 for shard in range(shards)}
        self._generation = 0
        self._loads = 0
        self._started = False
        self.counters = {
            "queries": 0,
            "warm_hits": 0,
            "scatter_pruned": 0,
            "scatter_broadcast": 0,
            "rounds": 0,
            "exchanged": 0,
            "loads": 0,
            "load_facts": 0,
            "checkpoints": 0,
            "checkpoint_failures": 0,
            "respawns": 0,
        }

    @property
    def durable(self) -> bool:
        return self.snapshot_dir is not None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Spawn the whole fleet (handshakes run in parallel)."""
        if self._started:
            return
        list(self._pool.map(
            lambda client: client.spawn(), self._clients
        ))
        self._started = True

    def pids(self) -> dict[int, int | None]:
        """Worker pids by shard (the chaos harness aims SIGKILL here)."""
        return {
            client.shard: client.pid for client in self._clients
        }

    def recover(self) -> dict:
        """Restore every shard, then reconcile against the manifest."""
        self.start()
        with self._rw.write_locked(), obs_span("shard.recover"):
            replies = self._scatter({
                shard: {"op": "recover"}
                for shard in range(self.shards)
            })
            _checked(replies)
            summaries = {}
            for shard, reply in sorted(replies.items()):
                self._epochs[shard] = reply.get("epoch", 0)
                summaries[shard] = reply.get("recovery")
            if self.durable:
                manifest, quarantined = (
                    cluster_snapshot.latest_manifest(
                        self.snapshot_dir, self.program_id
                    )
                )
            else:
                manifest, quarantined = None, []
            status = cluster_snapshot.reconcile(manifest, self._epochs)
            if manifest is not None:
                self._generation = int(manifest.get("generation", 0))
            corrupt = sum(
                (summary or {}).get("corrupt", 0)
                for summary in summaries.values()
            )
            return {
                "shards": summaries,
                "manifest": status,
                "quarantined_manifests": quarantined,
                "corrupt": corrupt,
                "epoch": self.epoch,
            }

    def close(self, drain: bool = True) -> None:
        """Final checkpoint barrier (when durable), then shut down."""
        with self._rw.write_locked():
            if drain and self.durable and self._started:
                try:
                    self._checkpoint_locked()
                except (ShardError, WorkerReplyError):
                    pass  # per-shard WALs already hold every ack
            for client in self._clients:
                client.close(graceful=drain)
        self._pool.shutdown(wait=False)

    # -- plumbing -----------------------------------------------------

    def _scatter(
        self, payloads: Mapping[int, dict]
    ) -> dict[int, dict]:
        if len(payloads) == 1:
            ((shard, payload),) = payloads.items()
            return {shard: self._clients[shard].call(payload)}
        futures = {
            shard: self._pool.submit(
                self._clients[shard].call, payload
            )
            for shard, payload in payloads.items()
        }
        replies: dict[int, dict] = {}
        first_error: ShardError | None = None
        for shard, future in futures.items():
            try:
                replies[shard] = future.result()
            except ShardError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return replies

    def _ensure_alive(self) -> None:
        if all(client.alive for client in self._clients):
            return
        with self._rw.write_locked():
            for client in self._clients:
                if client.alive:
                    continue
                try:
                    client.close(graceful=False)
                    client.spawn()
                    if self.durable:
                        reply = client.call({"op": "recover"})
                        if reply.get("ok"):
                            self._epochs[client.shard] = reply.get(
                                "epoch", 0
                            )
                    self.counters["respawns"] += 1
                    obs_count("shard.respawns")
                except ShardError:
                    pass  # stays down; its requests keep failing fast

    def _error(
        self, query: Query | None, code: str, message: str
    ) -> Response:
        return Response(
            kind="error",
            query=query,
            error_code=code,
            error_message=message,
        )

    @property
    def epoch(self) -> int:
        """The cluster epoch: the sum of per-shard load epochs."""
        return sum(self._epochs.values())

    # -- queries ------------------------------------------------------

    def query(self, query: Query) -> Response:
        """Scatter one query, exchange deltas, gather the answer."""
        self._ensure_alive()
        text = str(query)
        self.counters["queries"] += 1
        with self._rw.read_locked(), obs_span("shard.query"):
            epoch = self.epoch
            with self._cache_lock:
                hit = self._answers.get(text)
                if hit is not None and hit[0] == epoch:
                    self._answers.move_to_end(text)
                    self.counters["warm_hits"] += 1
                    obs_count("shard.warm_hits")
                    return replace(hit[1], cached=True, warm=True)
            try:
                response = self._query_locked(query, text)
            except WorkerReplyError as error:
                return self._error(query, error.code, error.message)
            except ShardError as error:
                return self._error(query, "REPRO_SHARD", str(error))
            if response.ok and response.completeness == "complete":
                with self._cache_lock:
                    self._answers[text] = (epoch, response)
                    self._answers.move_to_end(text)
                    while len(self._answers) > self.cache_size:
                        self._answers.popitem(last=False)
            return response

    def _query_locked(self, query: Query, text: str) -> Response:
        participants = self.plan.seed_shards(query)
        if participants is None:
            participants = list(range(self.shards))
            self.counters["scatter_broadcast"] += 1
            obs_count("shard.scatter_broadcast")
        else:
            self.counters["scatter_pruned"] += 1
            obs_count("shard.scatter_pruned")
        qid = f"q{next(self._qids)}"
        starts = self._scatter({
            shard: {"op": "q_start", "qid": qid, "query": text}
            for shard in participants
        })
        _checked(starts)
        all_warm = all(
            reply.get("warm") for reply in starts.values()
        )
        try:
            outcome = None
            if not all_warm:
                outcome = run_exchange(
                    self._scatter,
                    participants,
                    qid,
                    self.eval_iterations,
                )
                self.counters["rounds"] += outcome.rounds
                self.counters["exchanged"] += outcome.exchanged
            with obs_span("shard.gather"):
                gathered = self._scatter({
                    shard: {
                        "op": "q_answers",
                        "qid": qid,
                        "query": text,
                    }
                    for shard in participants
                })
            _checked(gathered)
        except BaseException:
            try:
                self._scatter({
                    shard: {"op": "q_finish", "qid": qid}
                    for shard in participants
                })
            except (ShardError, WorkerReplyError):
                pass
            raise
        truncated = outcome.truncated if outcome else None
        for reply in gathered.values():
            if reply.get("exhausted") and truncated is None:
                truncated = str(reply["exhausted"])
        complete = truncated is None
        try:
            self._scatter({
                shard: {
                    "op": "q_finish",
                    "qid": qid,
                    "keep_warm": complete,
                }
                for shard in participants
            })
        except (ShardError, WorkerReplyError):
            pass  # warm state is an optimization, never correctness
        if truncated is not None and self.on_limit == "fail":
            return self._error(
                query,
                "REPRO_BUDGET",
                f"{truncated} budget exhausted during evaluate",
            )
        merged: dict[str, dict] = {}
        for shard in sorted(gathered):
            for entry in gathered[shard].get("answers", ()):
                merged.setdefault(fact_key(entry), entry)
        answers = [
            decode_fact(entry)
            for __, entry in sorted(merged.items())
        ]
        first = starts[min(starts)]
        if truncated is not None:
            completeness = f"truncated:{truncated}"
        elif first.get("fallbacks"):
            completeness = "approximated"
        else:
            completeness = "complete"
        return Response(
            kind="answers",
            query=query,
            answers=answers,
            completeness=completeness,
            form=first.get("form"),
            cached=all(
                reply.get("cached") for reply in starts.values()
            ),
            warm=all_warm,
            notes=list(first.get("notes", ())),
            epoch=self.epoch,
        )

    # -- loads and durability -----------------------------------------

    def add_facts(self, facts: Iterable[Fact]) -> Response:
        """Route a fact batch to owner shards under the write lock."""
        self._ensure_alive()
        facts = list(facts)
        with self._rw.write_locked(), obs_span("shard.load"):
            targets: dict[int, list[dict]] = {}
            for fact in facts:
                owner = self.plan.route(fact)
                shards = (
                    range(self.shards) if owner is None else (owner,)
                )
                for shard in shards:
                    targets.setdefault(shard, []).append(
                        encode_fact(fact)
                    )
            if not targets:
                return Response(
                    kind="facts", added=0, epoch=self.epoch
                )
            try:
                replies = self._scatter({
                    shard: {"op": "load", "facts": payload}
                    for shard, payload in targets.items()
                })
            except ShardError as error:
                return self._error(None, "REPRO_SHARD", str(error))
            for shard, reply in sorted(replies.items()):
                if reply.get("ok"):
                    self._epochs[shard] = reply.get(
                        "epoch", self._epochs[shard]
                    )
            failed = [
                (shard, reply)
                for shard, reply in sorted(replies.items())
                if not reply.get("ok")
            ]
            if failed:
                shard, reply = failed[0]
                return self._error(
                    None,
                    reply.get("error_code", "REPRO_INTERNAL"),
                    f"shard {shard}: {reply.get('error_message')}",
                )
            new_keys: set[str] = set()
            for reply in replies.values():
                new_keys.update(
                    fact_key(entry)
                    for entry in reply.get("new", ())
                )
            self._loads += 1
            self.counters["loads"] += 1
            self.counters["load_facts"] += len(facts)
            obs_count("shard.loads")
            obs_count("shard.load_facts", len(facts))
            if (
                self.durable
                and self._loads % self.snapshot_every == 0
            ):
                try:
                    self._checkpoint_locked()
                except (ShardError, WorkerReplyError):
                    # The acks are already WAL-durable per shard; a
                    # failed barrier only delays the next manifest.
                    self.counters["checkpoint_failures"] += 1
                    obs_count("shard.checkpoint_failures")
            return Response(
                kind="facts",
                added=len(new_keys),
                epoch=self.epoch,
            )

    def checkpoint(self) -> dict:
        """A consistent cross-shard checkpoint (public entry point)."""
        with self._rw.write_locked():
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        with obs_span("shard.checkpoint"):
            replies = self._scatter({
                shard: {"op": "checkpoint"}
                for shard in range(self.shards)
            })
            _checked(replies)
            for shard, reply in sorted(replies.items()):
                self._epochs[shard] = reply.get(
                    "epoch", self._epochs[shard]
                )
            self._generation += 1
            if self.durable:
                cluster_snapshot.write_manifest(
                    self.snapshot_dir,
                    self.program_id,
                    self._generation,
                    self.shards,
                    self._epochs,
                )
            self.counters["checkpoints"] += 1
            obs_count("shard.checkpoints")
            return {
                "generation": self._generation,
                "epochs": dict(self._epochs),
                "epoch": self.epoch,
            }

    # -- inspection ---------------------------------------------------

    def healthz(self) -> dict:
        """Per-shard liveness, durability and epoch report."""
        per_shard = []
        for client in self._clients:
            entry: dict = {
                "shard": client.shard,
                "pid": client.pid,
                "deaths": client.deaths,
            }
            if not client.alive:
                entry["status"] = "down"
            else:
                try:
                    reply = client.call({"op": "healthz"})
                    entry.update(
                        status=reply.get("status", "ok"),
                        epoch=reply.get("epoch"),
                        edb_facts=reply.get("edb_facts"),
                        durability=reply.get("durability"),
                    )
                except ShardError:
                    entry["status"] = "down"
            per_shard.append(entry)
        healthy = all(
            entry.get("status") == "ok" for entry in per_shard
        )
        return {
            "status": "ok" if healthy else "degraded",
            "shards": per_shard,
            "epoch": self.epoch,
            "generation": self._generation,
        }

    def stats(self) -> dict:
        """Coordinator counters, the plan, and per-shard stats."""
        per_shard = []
        for client in self._clients:
            if not client.alive:
                per_shard.append(
                    {"shard": client.shard, "status": "down"}
                )
                continue
            try:
                per_shard.append(client.call({"op": "stats"}))
            except ShardError:
                per_shard.append(
                    {"shard": client.shard, "status": "down"}
                )
        return {
            "shards": self.shards,
            "epoch": self.epoch,
            "coordinator": dict(self.counters),
            "worker_deaths": sum(
                client.deaths for client in self._clients
            ),
            "plan": self.plan.describe(),
            "plan_notes": [
                {"pred": note.pred, "reason": note.reason}
                for note in self.plan_notes
            ],
            "answer_cache": len(self._answers),
            "generation": self._generation,
            "per_shard": per_shard,
            "healthz": self.healthz(),
        }


class ShardedSession:
    """The ``Session`` face of the cluster (what the supervisor sees)."""

    def __init__(
        self, coordinator: ShardCoordinator, on_limit: str
    ) -> None:
        self._coordinator = coordinator
        self.on_limit = on_limit
        #: The supervisor surfaces planner stats when present; shard
        #: planners live inside the workers (see per-shard stats).
        self.planner = None

    @property
    def epoch(self) -> int:
        return self._coordinator.epoch

    def query(self, query: Query) -> Response:
        return self._coordinator.query(query)

    def add_facts(self, facts: Iterable[Fact]) -> Response:
        return self._coordinator.add_facts(facts)

    def stats(self) -> dict:
        return self._coordinator.stats()


class ShardedEngine:
    """The ``Engine`` face of the cluster (drop-in for serve)."""

    def __init__(self, coordinator: ShardCoordinator) -> None:
        self.coordinator = coordinator
        self.session = ShardedSession(
            coordinator, coordinator.on_limit
        )

    @classmethod
    def from_text(
        cls, text: str, shards: int, **options: object
    ) -> "ShardedEngine":
        return cls(ShardCoordinator(text, shards, **options))

    def add_facts(self, facts: "str | Iterable[Fact]") -> Response:
        if isinstance(facts, str):
            from repro.lang.parser import parse_program
            from repro.service.engine import _facts_from_program

            try:
                facts = _facts_from_program(parse_program(facts))
            except ReproError as error:
                return Response(
                    kind="error",
                    error_code=error.code,
                    error_message=str(error),
                )
            except ValueError as error:
                return Response(
                    kind="error",
                    error_code="REPRO_USAGE",
                    error_message=str(error),
                )
        return self.coordinator.add_facts(facts)

    def stats(self) -> dict:
        return self.coordinator.stats()
