"""Scatter-gather over shard workers: the cluster behind one session.

:class:`ShardCoordinator` spawns ``N`` worker subprocesses
(:mod:`repro.shard.worker`), hands each the program text plus the
routing plan (:func:`repro.shard.partition.build_plan`), and then
presents the whole cluster behind the single-session surface the
serve supervisor already speaks: :class:`ShardedEngine` /
:class:`ShardedSession` duck-type ``Engine``/``Session`` closely
enough that :class:`repro.serve.supervisor.Supervisor` needs no
changes -- admission queue, retries, and the per-form circuit breaker
wrap the sharded engine exactly as they wrap a local one.

Request discipline mirrors the session's reader-writer rules
(:class:`~repro.service.sync.RWLock`): queries scatter under the
shared lock (any number in flight, multiplexed over the worker pipes
by query id), fact loads and checkpoint barriers run exclusively --
which is precisely what makes the cross-shard checkpoint a consistent
cut (:mod:`repro.shard.snapshot`).  A query is routed to the one
shard owning its bound key when the plan can prove that
(:meth:`~repro.shard.partition.ShardPlan.seed_shards` -- the magic
seed's constants picking the shard), and broadcast otherwise; rounds
then run the delta-exchange loop (:mod:`repro.shard.exchange`) and
answers are gathered, deduplicated, and deterministically ordered.

Failure policy: every worker interaction is deadline-bounded and
supervised.  A dead pipe, an expired op deadline, or a missed
heartbeat raises :class:`~repro.errors.ShardError`, which fails only
the requests touching that shard; a worker that is alive but
unresponsive (deadlocked, SIGSTOPped, wedged in a stuck op) is
*declared hung*, SIGKILLed, and respawned -- (when durable) replaying
its per-shard WAL before serving again.  Replies from a killed
incarnation are fenced by a per-incarnation nonce so a zombie's late
answer is never credited to its successor.  A query whose exchange
round lost a straggler is retried once inline after the respawn
(``shard.round_retries``); loads are never silently retried -- the
caller sees the error and decides, exactly as with the
single-session WAL ack.
"""

from __future__ import annotations

import itertools
import os
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, replace
from typing import Iterable, Mapping

from repro.driver import split_edb
from repro.engine.facts import Fact
from repro.errors import ReproError, ShardError, UsageError
from repro.governor import Budget
from repro.lang.ast import Query
from repro.lang.parser import parse_program_and_queries
from repro.obs.recorder import count as obs_count
from repro.obs.recorder import span as obs_span
from repro.serve.snapshot import decode_fact, encode_fact, program_sha
from repro.service.session import Response
from repro.service.sync import RWLock
from repro.shard import snapshot as cluster_snapshot
from repro.shard.exchange import (
    WorkerReplyError,
    fact_key,
    run_exchange,
)
from repro.shard.partition import build_plan
from repro.shard.protocol import FrameError, read_frame, write_frame


def _checked(replies: Mapping[int, dict]) -> None:
    for shard, reply in sorted(replies.items()):
        if not reply.get("ok"):
            raise WorkerReplyError(
                shard,
                reply.get("error_code", "REPRO_INTERNAL"),
                reply.get("error_message", "shard op failed"),
            )


#: Slack subtracted from the remaining request deadline before it
#: rides an op frame: the worker's meter trips this much *earlier*
#: than the coordinator's op timeout, so an overrunning query comes
#: back as a ``truncated:deadline`` reply instead of a declared hang.
DEADLINE_SLACK = 0.25

#: Grace the coordinator grants past the remaining deadline before
#: declaring the worker hung -- time for the worker to notice its own
#: deadline trip and send the truncated reply.
DEADLINE_GRACE = 2.0

#: The floor on a propagated deadline: an already-exhausted request
#: still sends a positive ``deadline_left`` so the worker's meter
#: trips at its first checkpoint rather than the frame being invalid.
MIN_DEADLINE_LEFT = 0.001


class _Pending:
    """One in-flight call's reply slot, tagged with its incarnation."""

    __slots__ = ("nonce", "event", "reply")

    def __init__(self, nonce: str) -> None:
        self.nonce = nonce
        self.event = threading.Event()
        self.reply: dict | None = None


class ShardClient:
    """One worker subprocess behind a multiplexed, supervised pipe.

    A per-incarnation reader thread drains the worker's stdout and
    routes replies to waiting callers by frame ``id``, so a heartbeat
    ``ping`` can ride the same pipe as a long-running op.  Every call
    is deadline-bounded: on expiry (or a missed ping probe) the worker
    is declared *hung* -- SIGKILLed so the next request respawns it --
    and only the in-flight calls fail.  Replies carrying a stale
    incarnation ``nonce`` (a zombie draining its old pipe after a
    respawn) are fenced: dropped and counted, never credited to the
    successor.
    """

    #: Minimum seconds a ping probe is given to come back, however
    #: small the heartbeat interval (a busy-but-alive worker answers
    #: from its reader thread, but needs a GIL slice to do it).
    PING_FLOOR = 1.0

    def __init__(
        self,
        shard: int,
        hello: dict,
        *,
        op_timeout: float | None = 30.0,
        heartbeat_interval: float = 2.0,
        counters: dict | None = None,
    ) -> None:
        self.shard = shard
        self._hello = dict(hello, op="hello", shard=shard)
        self.process: subprocess.Popen | None = None
        self.alive = False
        self.deaths = 0
        self.incarnation = 0
        self.nonce = f"{shard}:0"
        self.op_timeout = op_timeout
        self.heartbeat_interval = heartbeat_interval
        self.counters = counters
        #: Serializes respawn attempts (double-checked on ``alive``)
        #: so racing readers never spawn two processes for one shard.
        self.spawn_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._mutex = threading.Lock()  # pending table + liveness
        self._pending: dict[int, _Pending] = {}
        self._ids = itertools.count(1)
        self._reader: threading.Thread | None = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def _count(self, key: str, obs_name: str, n: int = 1) -> None:
        obs_count(obs_name, n)
        if self.counters is not None:
            self.counters[key] = self.counters.get(key, 0) + n

    def spawn(self) -> dict:
        """Start (or restart) the worker and complete the handshake."""
        # The worker must import ``repro`` even when the coordinator
        # found it through sys.path manipulation (tests, benchmark
        # scripts) rather than an installed package or PYTHONPATH.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        paths = env.get("PYTHONPATH", "").split(os.pathsep)
        if package_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join(
                [package_root] + [path for path in paths if path]
            )
        self.incarnation += 1
        self.nonce = f"{self.shard}:{self.incarnation}"
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.shard.worker",
                "--shard",
                str(self.shard),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the coordinator's stderr
            env=env,
        )
        try:
            write_frame(self.process.stdin, self._hello)
            reply = read_frame(self.process.stdout)
        except (OSError, FrameError) as error:
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard} worker failed to start: {error}"
            ) from None
        if reply is None or not reply.get("ok"):
            detail = (
                "died during handshake"
                if reply is None
                else f"rejected handshake: {reply.get('error_message')}"
            )
            self._mark_dead()
            raise ShardError(
                f"shard {self.shard} worker {detail}"
            )
        self.alive = True
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(self.process, self.nonce),
            name=f"shard-{self.shard}-reader",
            daemon=True,
        )
        self._reader.start()
        return reply

    def _mark_dead(self) -> None:
        if self.alive:
            self.deaths += 1
            obs_count("shard.worker_deaths")
        self.alive = False

    # -- the reader side ----------------------------------------------

    def _read_loop(
        self, process: subprocess.Popen, nonce: str
    ) -> None:
        """Drain one incarnation's stdout, routing replies by id."""
        stream = process.stdout
        while True:
            try:
                frame = read_frame(stream)
            except (OSError, ValueError, FrameError) as error:
                # A damaged (or desynced) pipe is untrustworthy from
                # here on; kill the writer so nothing half-parsed can
                # ever be credited as a reply.
                self._fail_incarnation(
                    nonce, kill=isinstance(error, FrameError)
                )
                return
            if frame is None:
                self._fail_incarnation(nonce, kill=False)
                return
            self._route(frame, nonce)

    def _route(self, frame: dict, nonce: str) -> bool:
        """Deliver one reply; fence it if its incarnation is stale.

        A reply is credited only when it carries the *live* nonce and
        matches a pending call; anything else is a zombie's late
        answer (or an already-abandoned call's) and is dropped,
        counted as ``shard.fenced_replies``.
        """
        if frame.get("nonce") != self.nonce or nonce != self.nonce:
            self._count("fenced_replies", "shard.fenced_replies")
            return False
        with self._mutex:
            pending = self._pending.pop(frame.get("id"), None)
        if pending is None:
            self._count("fenced_replies", "shard.fenced_replies")
            return False
        pending.reply = frame
        pending.event.set()
        return True

    def _fail_incarnation(self, nonce: str, kill: bool) -> bool:
        """End one incarnation: mark dead, fail its in-flight calls.

        Returns whether this call performed the alive->dead
        transition (so hang accounting fires exactly once per
        incident even when the op timeout and a heartbeat race).
        """
        process = None
        with self._mutex:
            transitioned = False
            if self.nonce == nonce:
                process = self.process
                if self.alive:
                    self.deaths += 1
                    obs_count("shard.worker_deaths")
                    transitioned = True
                self.alive = False
            stale = [
                (frame_id, slot)
                for frame_id, slot in self._pending.items()
                if slot.nonce == nonce
            ]
            for frame_id, __ in stale:
                del self._pending[frame_id]
        if kill and process is not None:
            try:
                process.kill()
            except OSError:
                pass
        for __, slot in stale:
            slot.event.set()
        return transitioned

    def _declare_hung(self, reason: str) -> None:
        """The worker is alive but unresponsive: SIGKILL and fail."""
        if self._fail_incarnation(self.nonce, kill=True):
            self._count("hangs", "shard.hangs")
            print(
                f"repro shard coordinator: shard {self.shard} "
                f"(pid {self.pid}) declared hung: {reason}",
                file=sys.stderr,
            )

    # -- the calling side ---------------------------------------------

    def call(
        self,
        payload: dict,
        *,
        timeout: float | None = None,
        probe: bool = True,
    ) -> dict:
        """One deadline-bounded request; replies routed by frame id.

        Waits up to ``timeout`` (the default ``op_timeout``) for the
        reply, probing with ``ping`` every heartbeat interval while
        waiting so a *dead* worker is detected long before a merely
        *slow* op's deadline.  Expiry (or a missed probe) declares the
        worker hung: it is SIGKILLed, every in-flight call on it fails
        with :class:`~repro.errors.ShardError`, and the next request
        respawns it.
        """
        process = self.process
        nonce = self.nonce
        if not self.alive or process is None:
            raise ShardError(f"shard {self.shard} worker is down")
        frame_id = next(self._ids)
        pending = _Pending(nonce)
        with self._mutex:
            self._pending[frame_id] = pending
        op = payload.get("op")
        try:
            with self._write_lock:
                write_frame(
                    process.stdin,
                    dict(payload, id=frame_id, nonce=nonce),
                )
        except (OSError, ValueError, FrameError) as error:
            with self._mutex:
                self._pending.pop(frame_id, None)
            self._fail_incarnation(nonce, kill=True)
            raise ShardError(
                f"shard {self.shard} worker transport failed "
                f"(pid {self.pid}): {error}"
            ) from None
        limit = self.op_timeout if timeout is None else timeout
        interval = (
            self.heartbeat_interval
            if probe and self.heartbeat_interval
            else None
        )
        started = time.monotonic()
        while not pending.event.is_set():
            remaining = (
                None
                if limit is None
                else limit - (time.monotonic() - started)
            )
            if remaining is not None and remaining <= 0:
                self._declare_hung(
                    f"op {op} exceeded its {limit:.3g}s deadline"
                )
                break
            wait_for = remaining
            if interval is not None:
                wait_for = (
                    interval
                    if wait_for is None
                    else min(interval, wait_for)
                )
            if pending.event.wait(wait_for):
                break
            if (
                interval is not None
                and op != "ping"
                and not pending.event.is_set()
                and not self.ping()
            ):
                break  # the probe declared the worker hung
        reply = pending.reply
        if reply is None:
            with self._mutex:
                self._pending.pop(frame_id, None)
            raise ShardError(
                f"shard {self.shard} worker hung or died during "
                f"{op} (pid {self.pid})"
            )
        return reply

    def ping(self, grace: float | None = None) -> bool:
        """Whether the worker answers a heartbeat within ``grace``.

        The worker answers pings from its reader thread even while an
        op runs, so a miss means the *process* is gone or wedged
        (killed, SIGSTOPped, stuck pump), not merely busy.  A miss is
        counted and declares the worker hung via the timeout path.
        """
        if grace is None:
            grace = max(
                self.PING_FLOOR, self.heartbeat_interval or 0.0
            )
        try:
            self.call({"op": "ping"}, timeout=grace, probe=False)
            return True
        except ShardError:
            self._count(
                "heartbeat_misses", "shard.heartbeat_misses"
            )
            return False

    def close(
        self, graceful: bool = True, timeout: float | None = None
    ) -> None:
        """Shut the worker down: shutdown op, then an escalation
        ladder (EOF -> SIGTERM -> ``wait(timeout)`` -> SIGKILL), so a
        stuck worker can stall shutdown by at most a few timeouts."""
        process = self.process
        if process is None:
            return
        if timeout is None:
            timeout = min(self.op_timeout or 5.0, 5.0)
        if graceful and self.alive:
            try:
                self.call(
                    {"op": "shutdown"}, timeout=timeout, probe=False
                )
            except ShardError:
                pass  # already SIGKILLed by the hang path
        self.alive = False
        try:
            if process.stdin is not None:
                process.stdin.close()
        except OSError:
            pass
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        try:
            if process.stdout is not None:
                process.stdout.close()
        except OSError:
            pass
        reader = self._reader
        if (
            reader is not None
            and reader is not threading.current_thread()
        ):
            reader.join(timeout=1.0)


class ShardCoordinator:
    """The cluster: routing plan, worker fleet, and request surface."""

    def __init__(
        self,
        text: str,
        shards: int,
        *,
        strategy: str = "rewrite",
        max_iterations: int = 20,
        eval_iterations: int = 200,
        cache_size: int = 64,
        on_limit: str = "truncate",
        budget: Budget | None = None,
        snapshot_dir: str | None = None,
        snapshot_every: int = 8,
        faults: str | None = None,
        partition_keys: dict[str, int] | None = None,
        partition_ranges: dict[str, tuple] | None = None,
        op_timeout: float | None = 30.0,
        heartbeat_interval: float = 2.0,
    ) -> None:
        if shards < 1:
            raise UsageError(f"shard count must be >= 1: {shards}")
        program, __ = parse_program_and_queries(text)
        rules, edb = split_edb(program)
        self.plan, self.plan_notes = build_plan(
            rules,
            edb,
            shards,
            keys=partition_keys,
            ranges=partition_ranges,
        )
        self.shards = shards
        self.program_id = program_sha(text)
        self.snapshot_dir = snapshot_dir
        self.snapshot_every = snapshot_every
        self.eval_iterations = eval_iterations
        self.cache_size = cache_size
        self.on_limit = on_limit
        self.budget = budget
        self.op_timeout = op_timeout
        self.heartbeat_interval = heartbeat_interval
        program_text = "\n".join(str(rule) for rule in program)
        budget_spec = (
            None
            if budget is None or budget.is_unlimited()
            else asdict(budget)
        )
        hello = {
            "program": program_text,
            "plan": self.plan.describe(),
            "strategy": strategy,
            "max_iterations": max_iterations,
            "eval_iterations": eval_iterations,
            "cache_size": cache_size,
            "on_limit": on_limit,
            "budget": budget_spec,
            "program_id": self.program_id,
            "faults": faults,
        }
        self.counters = {
            "queries": 0,
            "warm_hits": 0,
            "scatter_pruned": 0,
            "scatter_broadcast": 0,
            "rounds": 0,
            "exchanged": 0,
            "loads": 0,
            "load_facts": 0,
            "checkpoints": 0,
            "checkpoint_failures": 0,
            "respawns": 0,
            "hangs": 0,
            "heartbeat_misses": 0,
            "fenced_replies": 0,
            "round_retries": 0,
        }
        self._clients = [
            ShardClient(
                shard,
                dict(
                    hello,
                    snapshot_dir=(
                        cluster_snapshot.shard_directory(
                            snapshot_dir, shard
                        )
                        if snapshot_dir
                        else None
                    ),
                ),
                op_timeout=op_timeout,
                heartbeat_interval=heartbeat_interval,
                counters=self.counters,
            )
            for shard in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-scatter"
        )
        self._rw = RWLock()
        self._cache_lock = threading.Lock()
        self._answers: OrderedDict[str, tuple[int, Response]] = (
            OrderedDict()
        )
        self._qids = itertools.count(1)
        self._epochs = {shard: 0 for shard in range(shards)}
        self._generation = 0
        self._loads = 0
        self._started = False
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None

    @property
    def durable(self) -> bool:
        return self.snapshot_dir is not None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Spawn the whole fleet (handshakes run in parallel)."""
        if self._started:
            return
        list(self._pool.map(
            lambda client: client.spawn(), self._clients
        ))
        self._started = True
        if self.heartbeat_interval and self._hb_thread is None:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="shard-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    def _heartbeat_loop(self) -> None:
        """Ping idle workers so a wedged one is noticed *between*
        requests, not only when the next request blocks on it."""
        interval = self.heartbeat_interval
        while not self._hb_stop.wait(interval):
            for client in self._clients:
                if self._hb_stop.is_set():
                    return
                if client.alive:
                    client.ping()

    def pids(self) -> dict[int, int | None]:
        """Worker pids by shard (the chaos harness aims SIGKILL here)."""
        return {
            client.shard: client.pid for client in self._clients
        }

    def recover(self) -> dict:
        """Restore every shard, then reconcile against the manifest."""
        self.start()
        with self._rw.write_locked(), obs_span("shard.recover"):
            replies = self._scatter({
                shard: {"op": "recover"}
                for shard in range(self.shards)
            })
            _checked(replies)
            summaries = {}
            for shard, reply in sorted(replies.items()):
                self._epochs[shard] = reply.get("epoch", 0)
                summaries[shard] = reply.get("recovery")
            if self.durable:
                manifest, quarantined = (
                    cluster_snapshot.latest_manifest(
                        self.snapshot_dir, self.program_id
                    )
                )
            else:
                manifest, quarantined = None, []
            status = cluster_snapshot.reconcile(manifest, self._epochs)
            if manifest is not None:
                self._generation = int(manifest.get("generation", 0))
            corrupt = sum(
                (summary or {}).get("corrupt", 0)
                for summary in summaries.values()
            )
            return {
                "shards": summaries,
                "manifest": status,
                "quarantined_manifests": quarantined,
                "corrupt": corrupt,
                "epoch": self.epoch,
            }

    def close(self, drain: bool = True) -> None:
        """Final checkpoint barrier (when durable), then shut down."""
        self._hb_stop.set()
        with self._rw.write_locked():
            if drain and self.durable and self._started:
                try:
                    self._checkpoint_locked()
                except (ShardError, WorkerReplyError):
                    pass  # per-shard WALs already hold every ack
            for client in self._clients:
                client.close(graceful=drain)
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
        self._pool.shutdown(wait=False)

    # -- plumbing -----------------------------------------------------

    def _scatter(
        self,
        payloads: Mapping[int, dict],
        timeout: float | None = None,
    ) -> dict[int, dict]:
        if len(payloads) == 1:
            ((shard, payload),) = payloads.items()
            return {
                shard: self._clients[shard].call(
                    payload, timeout=timeout
                )
            }
        futures = {
            shard: self._pool.submit(
                self._clients[shard].call, payload, timeout=timeout
            )
            for shard, payload in payloads.items()
        }
        replies: dict[int, dict] = {}
        first_error: ShardError | None = None
        for shard, future in futures.items():
            try:
                replies[shard] = future.result()
            except ShardError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return replies

    def _respawn_client(self, client: ShardClient) -> bool:
        """Respawn one dead worker (and WAL-recover it when durable).

        Guarded by the client's own spawn lock, not the coordinator's
        reader-writer lock, so it is callable both from the
        write-locked :meth:`_ensure_alive` sweep and *inline* from a
        read-locked query retrying a straggler round (a reader cannot
        upgrade to the write lock without deadlocking).
        """
        with client.spawn_lock:
            if client.alive:
                return True  # a racing reader already revived it
            try:
                client.close(graceful=False)
                client.spawn()
                if self.durable:
                    reply = client.call({"op": "recover"})
                    if reply.get("ok"):
                        self._epochs[client.shard] = reply.get(
                            "epoch", 0
                        )
                else:
                    # No WAL to replay: the fresh worker holds only
                    # the baked program facts, so every load this
                    # shard ever acked is gone.  Resetting its epoch
                    # moves the cluster epoch, which invalidates
                    # cached answers computed over the richer
                    # pre-crash state -- without this, a post-respawn
                    # query would recompute from the amnesiac shard
                    # and *poison* the cache at the still-current
                    # epoch.
                    self._epochs[client.shard] = 0
                self.counters["respawns"] += 1
                obs_count("shard.respawns")
                return True
            except ShardError:
                return False  # stays down; requests keep failing fast

    def _ensure_alive(self) -> None:
        if all(client.alive for client in self._clients):
            return
        with self._rw.write_locked():
            for client in self._clients:
                if not client.alive:
                    self._respawn_client(client)

    def _error(
        self, query: Query | None, code: str, message: str
    ) -> Response:
        return Response(
            kind="error",
            query=query,
            error_code=code,
            error_message=message,
        )

    @property
    def epoch(self) -> int:
        """The cluster epoch: the sum of per-shard load epochs."""
        return sum(self._epochs.values())

    # -- queries ------------------------------------------------------

    def query(self, query: Query) -> Response:
        """Scatter one query, exchange deltas, gather the answer."""
        self._ensure_alive()
        text = str(query)
        started = time.monotonic()
        self.counters["queries"] += 1
        with self._rw.read_locked(), obs_span("shard.query"):
            epoch = self.epoch
            with self._cache_lock:
                hit = self._answers.get(text)
                if hit is not None and hit[0] == epoch:
                    self._answers.move_to_end(text)
                    self.counters["warm_hits"] += 1
                    obs_count("shard.warm_hits")
                    return replace(hit[1], cached=True, warm=True)
            try:
                response = self._query_locked(query, text, started)
            except WorkerReplyError as error:
                return self._error(query, error.code, error.message)
            except ShardError as error:
                response = self._retry_after_straggler(
                    query, text, started, error
                )
            if response.ok and response.completeness == "complete":
                with self._cache_lock:
                    self._answers[text] = (epoch, response)
                    self._answers.move_to_end(text)
                    while len(self._answers) > self.cache_size:
                        self._answers.popitem(last=False)
            return response

    def _retry_after_straggler(
        self,
        query: Query,
        text: str,
        started: float,
        error: ShardError,
    ) -> Response:
        """One inline retry after a straggler round hung or died.

        The exchange barrier used to wait on a wedged worker forever;
        now the op deadline fails the round with ``ShardError``, the
        dead participants are respawned *inline* (under the read lock
        -- per-client spawn locks serialize racing readers) and the
        query restarts from ``q_start`` exactly once.  A second
        failure surfaces as transient ``REPRO_SHARD`` for the serve
        supervisor's retry/breaker machinery to absorb.
        """
        revived = [
            self._respawn_client(client)
            for client in self._clients
            if not client.alive
        ]
        if not all(revived):
            return self._error(query, "REPRO_SHARD", str(error))
        self.counters["round_retries"] += 1
        obs_count("shard.round_retries")
        try:
            return self._query_locked(query, text, started)
        except WorkerReplyError as retry_error:
            return self._error(
                query, retry_error.code, retry_error.message
            )
        except ShardError as retry_error:
            return self._error(
                query, "REPRO_SHARD", str(retry_error)
            )

    def _op_deadline(
        self, started: float
    ) -> tuple[float | None, float | None]:
        """``(deadline_left, op timeout)`` for a request's next op.

        With a wall-clock budget, the remaining request deadline
        (minus :data:`DEADLINE_SLACK`) rides the op frame so the
        worker's meter trips *first* and the reply comes back
        ``truncated:deadline``; the coordinator's own timeout trails
        it by :data:`DEADLINE_GRACE` and only fires on a genuinely
        unresponsive worker.  Without one, ops take the flat
        ``op_timeout``.
        """
        budget = self.budget
        if budget is None or budget.deadline is None:
            return None, self.op_timeout
        remaining = budget.deadline - (time.monotonic() - started)
        left = max(remaining - DEADLINE_SLACK, MIN_DEADLINE_LEFT)
        return left, max(remaining, 0.0) + DEADLINE_GRACE

    def _query_locked(
        self, query: Query, text: str, started: float
    ) -> Response:
        def send(
            payloads: Mapping[int, dict]
        ) -> dict[int, dict]:
            left, timeout = self._op_deadline(started)
            if left is not None:
                payloads = {
                    shard: dict(
                        payload, deadline_left=round(left, 3)
                    )
                    for shard, payload in payloads.items()
                }
            return self._scatter(payloads, timeout=timeout)

        participants = self.plan.seed_shards(query)
        if participants is None:
            participants = list(range(self.shards))
            self.counters["scatter_broadcast"] += 1
            obs_count("shard.scatter_broadcast")
        else:
            self.counters["scatter_pruned"] += 1
            obs_count("shard.scatter_pruned")
        qid = f"q{next(self._qids)}"
        starts = send({
            shard: {"op": "q_start", "qid": qid, "query": text}
            for shard in participants
        })
        _checked(starts)
        all_warm = all(
            reply.get("warm") for reply in starts.values()
        )
        try:
            outcome = None
            if not all_warm:
                outcome = run_exchange(
                    send,
                    participants,
                    qid,
                    self.eval_iterations,
                )
                self.counters["rounds"] += outcome.rounds
                self.counters["exchanged"] += outcome.exchanged
            with obs_span("shard.gather"):
                gathered = send({
                    shard: {
                        "op": "q_answers",
                        "qid": qid,
                        "query": text,
                    }
                    for shard in participants
                })
            _checked(gathered)
        except BaseException:
            try:
                self._scatter({
                    shard: {"op": "q_finish", "qid": qid}
                    for shard in participants
                })
            except (ShardError, WorkerReplyError):
                pass
            raise
        truncated = outcome.truncated if outcome else None
        for reply in gathered.values():
            if reply.get("exhausted") and truncated is None:
                truncated = str(reply["exhausted"])
        complete = truncated is None
        try:
            self._scatter({
                shard: {
                    "op": "q_finish",
                    "qid": qid,
                    "keep_warm": complete,
                }
                for shard in participants
            })
        except (ShardError, WorkerReplyError):
            pass  # warm state is an optimization, never correctness
        if truncated is not None and self.on_limit == "fail":
            return self._error(
                query,
                "REPRO_BUDGET",
                f"{truncated} budget exhausted during evaluate",
            )
        merged: dict[str, dict] = {}
        for shard in sorted(gathered):
            for entry in gathered[shard].get("answers", ()):
                merged.setdefault(fact_key(entry), entry)
        answers = [
            decode_fact(entry)
            for __, entry in sorted(merged.items())
        ]
        first = starts[min(starts)]
        if truncated is not None:
            completeness = f"truncated:{truncated}"
        elif first.get("fallbacks"):
            completeness = "approximated"
        else:
            completeness = "complete"
        return Response(
            kind="answers",
            query=query,
            answers=answers,
            completeness=completeness,
            form=first.get("form"),
            cached=all(
                reply.get("cached") for reply in starts.values()
            ),
            warm=all_warm,
            notes=list(first.get("notes", ())),
            epoch=self.epoch,
        )

    # -- loads and durability -----------------------------------------

    def add_facts(self, facts: Iterable[Fact]) -> Response:
        """Route a fact batch to owner shards under the write lock."""
        self._ensure_alive()
        facts = list(facts)
        with self._rw.write_locked(), obs_span("shard.load"):
            targets: dict[int, list[dict]] = {}
            for fact in facts:
                owner = self.plan.route(fact)
                shards = (
                    range(self.shards) if owner is None else (owner,)
                )
                for shard in shards:
                    targets.setdefault(shard, []).append(
                        encode_fact(fact)
                    )
            if not targets:
                return Response(
                    kind="facts", added=0, epoch=self.epoch
                )
            try:
                replies = self._scatter({
                    shard: {"op": "load", "facts": payload}
                    for shard, payload in targets.items()
                })
            except ShardError as error:
                return self._error(None, "REPRO_SHARD", str(error))
            for shard, reply in sorted(replies.items()):
                if reply.get("ok"):
                    self._epochs[shard] = reply.get(
                        "epoch", self._epochs[shard]
                    )
            failed = [
                (shard, reply)
                for shard, reply in sorted(replies.items())
                if not reply.get("ok")
            ]
            if failed:
                shard, reply = failed[0]
                return self._error(
                    None,
                    reply.get("error_code", "REPRO_INTERNAL"),
                    f"shard {shard}: {reply.get('error_message')}",
                )
            new_keys: set[str] = set()
            for reply in replies.values():
                new_keys.update(
                    fact_key(entry)
                    for entry in reply.get("new", ())
                )
            self._loads += 1
            self.counters["loads"] += 1
            self.counters["load_facts"] += len(facts)
            obs_count("shard.loads")
            obs_count("shard.load_facts", len(facts))
            if (
                self.durable
                and self._loads % self.snapshot_every == 0
            ):
                try:
                    self._checkpoint_locked()
                except (ShardError, WorkerReplyError):
                    # The acks are already WAL-durable per shard; a
                    # failed barrier only delays the next manifest.
                    self.counters["checkpoint_failures"] += 1
                    obs_count("shard.checkpoint_failures")
            return Response(
                kind="facts",
                added=len(new_keys),
                epoch=self.epoch,
            )

    def checkpoint(self) -> dict:
        """A consistent cross-shard checkpoint (public entry point)."""
        with self._rw.write_locked():
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        with obs_span("shard.checkpoint"):
            replies = self._scatter({
                shard: {"op": "checkpoint"}
                for shard in range(self.shards)
            })
            _checked(replies)
            for shard, reply in sorted(replies.items()):
                self._epochs[shard] = reply.get(
                    "epoch", self._epochs[shard]
                )
            self._generation += 1
            if self.durable:
                cluster_snapshot.write_manifest(
                    self.snapshot_dir,
                    self.program_id,
                    self._generation,
                    self.shards,
                    self._epochs,
                )
            self.counters["checkpoints"] += 1
            obs_count("shard.checkpoints")
            return {
                "generation": self._generation,
                "epochs": dict(self._epochs),
                "epoch": self.epoch,
            }

    # -- inspection ---------------------------------------------------

    def healthz(self) -> dict:
        """Per-shard liveness, durability and epoch report."""
        per_shard = []
        for client in self._clients:
            entry: dict = {
                "shard": client.shard,
                "pid": client.pid,
                "deaths": client.deaths,
            }
            if not client.alive:
                entry["status"] = "down"
            else:
                try:
                    reply = client.call({"op": "healthz"})
                    entry.update(
                        status=reply.get("status", "ok"),
                        epoch=reply.get("epoch"),
                        edb_facts=reply.get("edb_facts"),
                        durability=reply.get("durability"),
                    )
                except ShardError:
                    entry["status"] = "down"
            per_shard.append(entry)
        healthy = all(
            entry.get("status") == "ok" for entry in per_shard
        )
        return {
            "status": "ok" if healthy else "degraded",
            "shards": per_shard,
            "epoch": self.epoch,
            "generation": self._generation,
        }

    def stats(self) -> dict:
        """Coordinator counters, the plan, and per-shard stats."""
        per_shard = []
        for client in self._clients:
            if not client.alive:
                per_shard.append(
                    {"shard": client.shard, "status": "down"}
                )
                continue
            try:
                per_shard.append(client.call({"op": "stats"}))
            except ShardError:
                per_shard.append(
                    {"shard": client.shard, "status": "down"}
                )
        return {
            "shards": self.shards,
            "epoch": self.epoch,
            "coordinator": dict(self.counters),
            "worker_deaths": sum(
                client.deaths for client in self._clients
            ),
            "plan": self.plan.describe(),
            "plan_notes": [
                {"pred": note.pred, "reason": note.reason}
                for note in self.plan_notes
            ],
            "answer_cache": len(self._answers),
            "generation": self._generation,
            "per_shard": per_shard,
            "healthz": self.healthz(),
        }


class ShardedSession:
    """The ``Session`` face of the cluster (what the supervisor sees)."""

    def __init__(
        self, coordinator: ShardCoordinator, on_limit: str
    ) -> None:
        self._coordinator = coordinator
        self.on_limit = on_limit
        #: The supervisor surfaces planner stats when present; shard
        #: planners live inside the workers (see per-shard stats).
        self.planner = None

    @property
    def epoch(self) -> int:
        return self._coordinator.epoch

    def query(self, query: Query) -> Response:
        return self._coordinator.query(query)

    def add_facts(self, facts: Iterable[Fact]) -> Response:
        return self._coordinator.add_facts(facts)

    def stats(self) -> dict:
        return self._coordinator.stats()


class ShardedEngine:
    """The ``Engine`` face of the cluster (drop-in for serve)."""

    def __init__(self, coordinator: ShardCoordinator) -> None:
        self.coordinator = coordinator
        self.session = ShardedSession(
            coordinator, coordinator.on_limit
        )

    @classmethod
    def from_text(
        cls, text: str, shards: int, **options: object
    ) -> "ShardedEngine":
        return cls(ShardCoordinator(text, shards, **options))

    def add_facts(self, facts: "str | Iterable[Fact]") -> Response:
        if isinstance(facts, str):
            from repro.lang.parser import parse_program
            from repro.service.engine import _facts_from_program

            try:
                facts = _facts_from_program(parse_program(facts))
            except ReproError as error:
                return Response(
                    kind="error",
                    error_code=error.code,
                    error_message=str(error),
                )
            except ValueError as error:
                return Response(
                    kind="error",
                    error_code="REPRO_USAGE",
                    error_message=str(error),
                )
        return self.coordinator.add_facts(facts)

    def stats(self) -> dict:
        return self.coordinator.stats()
