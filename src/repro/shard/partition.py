"""The deterministic shard-key router: which shard owns which fact.

A :class:`ShardPlan` assigns every EDB relation a
:class:`PartitionSpec` -- hash- or range-partitioned on one key
column, or *broadcast* (replicated to every shard).  Routing is pure
arithmetic over the plan: no state, no randomness, and the hash is
``crc32`` over a canonical byte rendering of the key value, so the
same fact lands on the same shard in every process and across
restarts (Python's salted ``hash`` would not).

Which relations may be partitioned at all is a static property of the
*rules*: a derivation joining two partitioned facts that live on
different shards would never fire, because the exchange loop
(:mod:`repro.shard.exchange`) only replicates derived (IDB) tuples.
:func:`build_plan` therefore demotes relations until every rule body
contains at most one partitioned literal -- the remaining literals are
broadcast EDB relations (present everywhere) or IDB predicates (their
tuples are exchanged every round) -- which makes the partitioned
evaluation answer-identical to a single session for *any* program.
Small relations and relations with constraint (non-ground) facts are
broadcast outright: replicating a handful of tuples is cheaper than
exchanging against them, and a pending key position has no value to
hash.  The plan is derived from the program text alone -- never from
runtime loads -- so a restarted cluster with the same shard count
rebuilds the identical plan.

The seed side of the same arithmetic is
:meth:`ShardPlan.seed_shards`: a query whose form binds the key
column of a partitioned relation (the constants a magic seed would
carry -- the pushed constraint selection) can only touch the shard
owning that key value, so the coordinator scatters it to exactly that
shard and falls back to broadcast for everything else.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from fractions import Fraction

from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.errors import UsageError
from repro.lang.ast import Program, Query
from repro.lang.normalize import normalize_query
from repro.lang.terms import NumTerm, Sym
from repro.service.forms import canonicalize

#: Relations with at most this many program facts are broadcast.
SMALL_RELATION = 4


@dataclass(frozen=True)
class PartitionSpec:
    """How one relation's facts map to shards.

    ``kind`` is ``"hash"``, ``"range"``, or ``"broadcast"``.
    ``column`` is the 0-based key column; ``bounds`` (range only) are
    ascending split points: a numeric key ``v`` goes to the number of
    bounds ``< v`` (modulo the shard count), so ``bounds=(10, 20)``
    over 3 shards sends ``v<=10`` to shard 0, ``v<=20`` to shard 1,
    the rest to shard 2.  Non-numeric keys under a range spec fall
    back to the hash, keeping routing total.
    """

    kind: str
    column: int = 0
    bounds: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "range", "broadcast"):
            raise UsageError(
                f"unknown partition kind {self.kind!r}"
            )
        if self.column < 0:
            raise UsageError(
                f"partition key column must be >= 0: {self.column}"
            )


def _key_bytes(value: object) -> bytes | None:
    """A canonical, process-stable byte rendering of a key value."""
    if isinstance(value, Sym):
        return b"s:" + value.name.encode("utf-8")
    if isinstance(value, Fraction):
        return (
            b"n:"
            + str(value.numerator).encode()
            + b"/"
            + str(value.denominator).encode()
        )
    return None  # PENDING (a constrained position): no value to hash


def stable_hash(value: object) -> int | None:
    """The router's stable hash of one key value (``None`` = no key)."""
    data = _key_bytes(value)
    if data is None:
        return None
    return zlib.crc32(data)


class ShardPlan:
    """A frozen routing table over ``shards`` worker processes."""

    def __init__(
        self, shards: int, specs: dict[str, PartitionSpec]
    ) -> None:
        if shards < 1:
            raise UsageError(f"shard count must be >= 1: {shards}")
        self.shards = shards
        self.specs = dict(specs)

    # -- fact routing -------------------------------------------------

    def spec_for(self, pred: str) -> PartitionSpec:
        """The relation's spec (unknown relations broadcast)."""
        return self.specs.get(pred, PartitionSpec("broadcast"))

    def route_value(self, pred: str, value: object) -> int | None:
        """The shard owning one key value (``None`` = broadcast)."""
        spec = self.spec_for(pred)
        if spec.kind == "broadcast":
            return None
        if spec.kind == "range" and isinstance(value, Fraction):
            return bisect_right(
                [Fraction(b) for b in spec.bounds], value
            ) % self.shards
        digest = stable_hash(value)
        if digest is None:
            return None
        return digest % self.shards

    def route(self, fact: Fact) -> int | None:
        """The shard owning a fact, or ``None`` for broadcast.

        Total: every fact gets exactly one owner or is broadcast to
        all -- a partitioned relation's fact whose key position is
        pending (constraint facts) or out of range broadcasts rather
        than being dropped.
        """
        spec = self.spec_for(fact.pred)
        if spec.kind == "broadcast" or spec.column >= len(fact.args):
            return None
        return self.route_value(fact.pred, fact.args[spec.column])

    def placed_on(self, fact: Fact, shard: int) -> bool:
        """Does ``shard``'s EDB hold this fact under the plan?"""
        owner = self.route(fact)
        return owner is None or owner == shard

    # -- seed routing -------------------------------------------------

    def seed_shards(self, query: Query) -> list[int] | None:
        """The shards a query can touch (``None`` = broadcast to all).

        Prunable exactly when the query is over a partitioned EDB
        relation and its form binds the relation's key column -- then
        every answer fact carries that key value, all of them on its
        owner shard.  Queries over IDB predicates (derivations may
        join facts anywhere) and unbound key columns fall back to
        broadcast.
        """
        spec = self.spec_for(query.literal.pred)
        if spec.kind == "broadcast":
            return None
        form, __ = canonicalize(query)
        if spec.column >= len(form.adornment):
            return None
        if form.adornment[spec.column] != "b":
            return None
        normalized = normalize_query(query)
        arg = normalized.literal.args[spec.column]
        if isinstance(arg, Sym):
            value: object = arg
        elif isinstance(arg, NumTerm) and arg.is_constant():
            value = arg.value
        else:
            return None
        owner = self.route_value(query.literal.pred, value)
        return None if owner is None else [owner]

    # -- description --------------------------------------------------

    def describe(self) -> dict:
        """A JSON-ready rendering (handshake payload, stats)."""
        return {
            "shards": self.shards,
            "relations": {
                pred: {
                    "kind": spec.kind,
                    "column": spec.column,
                    **(
                        {"bounds": [str(b) for b in spec.bounds]}
                        if spec.bounds
                        else {}
                    ),
                }
                for pred, spec in sorted(self.specs.items())
            },
        }

    @classmethod
    def from_description(cls, payload: dict) -> "ShardPlan":
        """Rebuild the plan a worker received in its handshake."""
        specs = {
            pred: PartitionSpec(
                entry["kind"],
                entry.get("column", 0),
                tuple(
                    Fraction(b) for b in entry.get("bounds", ())
                ),
            )
            for pred, entry in payload["relations"].items()
        }
        return cls(payload["shards"], specs)


@dataclass
class PlanNote:
    """Why a relation ended up broadcast (surfaced in stats/docs)."""

    pred: str
    reason: str


def build_plan(
    rules: Program,
    edb: Database,
    shards: int,
    keys: dict[str, int] | None = None,
    ranges: dict[str, tuple] | None = None,
    small_threshold: int = SMALL_RELATION,
) -> tuple[ShardPlan, list[PlanNote]]:
    """Derive the routing plan for a program (module docstring).

    ``keys`` overrides the key column per relation (default 0);
    ``ranges`` maps relations to ascending numeric bounds, switching
    them from hash to range partitioning on the same key column.
    Returns the plan plus the demotion notes explaining every
    broadcast decision.
    """
    keys = keys or {}
    ranges = ranges or {}
    derived = rules.derived_predicates()
    counts: dict[str, int] = {}
    pending: set[str] = set()
    for fact in edb.all_facts():
        counts[fact.pred] = counts.get(fact.pred, 0) + 1
        column = keys.get(fact.pred, 0)
        if column >= len(fact.args) or _key_bytes(
            fact.args[column]
        ) is None:
            pending.add(fact.pred)
    edb_preds = set(counts)
    for rule in rules:
        for literal in rule.body:
            if literal.pred not in derived:
                edb_preds.add(literal.pred)

    notes: list[PlanNote] = []
    partitioned = set()
    for pred in sorted(edb_preds):
        if pred in pending:
            notes.append(PlanNote(
                pred, "constraint facts: key position has no value"
            ))
        elif counts.get(pred, 0) <= small_threshold:
            notes.append(PlanNote(
                pred,
                f"small relation ({counts.get(pred, 0)} facts): "
                "replication is cheaper than exchange",
            ))
        else:
            partitioned.add(pred)

    # Join safety: shrink until no rule body holds two partitioned
    # literals.  Keep the largest relation of each conflicting pair
    # (the biggest scan win); a self-join demotes the relation
    # outright -- its two facts may live on different shards.
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if rule.is_fact:
                continue
            lits = [
                literal.pred
                for literal in rule.body
                if literal.pred in partitioned
            ]
            if len(lits) < 2:
                continue
            if len(set(lits)) < len(lits):  # self-join
                victims = set(lits)
            else:
                keep = max(
                    set(lits), key=lambda p: (counts.get(p, 0), p)
                )
                victims = set(lits) - {keep}
            for pred in sorted(victims):
                partitioned.discard(pred)
                notes.append(PlanNote(
                    pred,
                    f"joined against another partitioned relation "
                    f"in rule {rule.label or str(rule.head)!r}",
                ))
            changed = True

    specs: dict[str, PartitionSpec] = {}
    for pred in sorted(edb_preds):
        column = keys.get(pred, 0)
        if pred not in partitioned:
            specs[pred] = PartitionSpec("broadcast", column)
        elif pred in ranges:
            specs[pred] = PartitionSpec(
                "range", column, tuple(ranges[pred])
            )
        else:
            specs[pred] = PartitionSpec("hash", column)
    return ShardPlan(shards, specs), notes


def parse_partition_keys(
    entries: list[str],
) -> tuple[dict[str, int], dict[str, tuple]]:
    """CLI ``--partition-key pred=COL[@B1,B2,...]`` entries.

    Returns ``(keys, ranges)`` for :func:`build_plan`; the ``@``
    suffix lists ascending range bounds, switching the relation to
    range partitioning.
    """
    keys: dict[str, int] = {}
    ranges: dict[str, tuple] = {}
    for entry in entries:
        pred, sep, rest = entry.partition("=")
        if not sep or not pred:
            raise UsageError(
                f"bad --partition-key {entry!r}: expected "
                "pred=COL or pred=COL@B1,B2,..."
            )
        column_text, at, bounds_text = rest.partition("@")
        try:
            keys[pred] = int(column_text)
        except ValueError:
            raise UsageError(
                f"bad --partition-key column in {entry!r}"
            ) from None
        if keys[pred] < 0:
            raise UsageError(
                f"--partition-key column must be >= 0 in {entry!r}"
            )
        if at:
            try:
                bounds = tuple(
                    Fraction(piece)
                    for piece in bounds_text.split(",")
                    if piece.strip()
                )
            except ValueError:
                raise UsageError(
                    f"bad --partition-key bounds in {entry!r}"
                ) from None
            if list(bounds) != sorted(bounds):
                raise UsageError(
                    f"--partition-key bounds must ascend in {entry!r}"
                )
            ranges[pred] = bounds
    return keys, ranges
