"""Single source of truth for the pipeline's default iteration caps.

Every fixpoint in the system is capped (non-termination is a studied
phenomenon of the paper, not a bug), and the caps used to be repeated
as literal defaults across half a dozen signatures -- which is how the
driver and the engine once drifted apart silently.  Any module that
needs a default cap imports it from here; a regression test
(``tests/unit/test_config_defaults.py``) asserts that the public
signatures actually agree with these constants.
"""

from __future__ import annotations

#: Default cap for the constraint-inference (rewrite) fixpoints:
#: ``Gen_predicate_constraints``, ``Gen_QRP_constraints``, and the
#: procedures built on them.
DEFAULT_REWRITE_ITERATIONS = 50

#: Default cap for bottom-up fixpoint evaluation
#: (``repro.engine.fixpoint.evaluate``).
DEFAULT_EVAL_ITERATIONS = 200

#: Default cap for the terminating interval-hull widening fallback
#: (``repro.core.widening``); it converges on its own, the cap is a
#: backstop.
DEFAULT_WIDENING_ITERATIONS = 60
