"""One-call optimize-and-answer driver, and the guts of the CLI.

This is the "downstream user" surface: hand it a program text (rules
plus ground facts plus a query) and a strategy name, and it splits the
EDB out, applies the chosen transformation pipeline, evaluates
bottom-up, and returns the answers with full diagnostics.

Strategies (Section 7's vocabulary):

* ``none``           -- evaluate as written;
* ``pred``           -- ``Gen_Prop_predicate_constraints`` only;
* ``qrp``            -- ``Gen_Prop_QRP_constraints`` only;
* ``rewrite``        -- ``Constraint_rewrite`` (pred then qrp);
* ``magic``          -- bf-adorned constraint magic only;
* ``optimal``        -- the Theorem 7.10 order: pred, qrp, mg.

When the exact predicate-constraint fixpoint diverges, the driver falls
back to the widening of :mod:`repro.core.widening` instead of giving up
(the paper's widen-to-*true* is the fallback of last resort inside
that module).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import apply_sequence
from repro.core.predconstraints import (
    attach_constraints_to_bodies,
    gen_predicate_constraints,
)
from repro.core.qrp import gen_prop_qrp_constraints
from repro.core.rewrite import constraint_rewrite
from repro.core.widening import gen_predicate_constraints_widened
from repro.engine import Database, EvaluationResult, evaluate
from repro.engine.facts import Fact
from repro.engine.query import answers as raw_answers
from repro.lang.ast import Program, Query, Rule
from repro.lang.parser import parse_program_and_queries
from repro.obs.recorder import span as obs_span


STRATEGIES = ("none", "pred", "qrp", "rewrite", "magic", "optimal")


@dataclass
class QueryOutcome:
    """Everything a driver run produced."""

    answers: list[Fact]
    result: EvaluationResult
    program: Program                  # the program actually evaluated
    query: Query
    strategy: str
    notes: list[str] = field(default_factory=list)

    @property
    def answer_strings(self) -> list[str]:
        """Answers rendered as query-variable bindings.

        The synthetic ``_answer`` facts' arguments correspond to the
        query's variables in sorted name order (see
        ``repro.lang.normalize.query_as_rule``); non-ground answer
        positions (constraint answers) render as the position's
        constraint.
        """
        variables = sorted(self.query.variables())
        rendered = []
        for fact in self.answers:
            parts = []
            for name, value in zip(variables, fact.args):
                from repro.engine.facts import PENDING
                from fractions import Fraction

                if value is PENDING:
                    parts.append(f"{name}: constrained")
                elif isinstance(value, Fraction):
                    shown = (
                        value.numerator
                        if value.denominator == 1
                        else value
                    )
                    parts.append(f"{name} = {shown}")
                else:
                    parts.append(f"{name} = {value.name}")
            suffix = ""
            if not fact.constraint.is_true():
                suffix = f"  [{fact.constraint}]"
            rendered.append(", ".join(parts) + suffix if parts else "yes")
        return sorted(rendered)


def split_edb(program: Program) -> tuple[Program, Database]:
    """Separate ground fact rules into an EDB database.

    A rule qualifies as an EDB fact when it has no body, no constraints
    and a ground head, *and* its predicate has no proper rules.  Other
    facts (e.g. constraint facts, or facts of an otherwise-derived
    predicate) stay in the program.
    """
    proper_heads = {
        rule.head.pred for rule in program if not rule.is_fact
    }
    edb = Database()
    kept: list[Rule] = []
    for rule in program:
        if (
            rule.is_fact
            and rule.constraint.is_true()
            and not rule.head.variables()
            and rule.head.pred not in proper_heads
            and rule.head.is_normalized()
        ):
            values = []
            ground = True
            for arg in rule.head.args:
                from repro.lang.terms import NumTerm, Sym

                if isinstance(arg, Sym):
                    values.append(arg)
                elif isinstance(arg, NumTerm) and arg.is_constant():
                    values.append(arg.value)
                else:  # pragma: no cover - excluded by checks above
                    ground = False
                    break
            if ground:
                edb.add_ground(rule.head.pred, values)
                continue
        kept.append(rule)
    return Program(kept), edb


def _pred_only(program: Program, notes: list[str]) -> Program:
    with obs_span("rewrite.pred"):
        constraints, report = gen_predicate_constraints(program)
        if not report.converged:
            notes.append(
                "exact predicate-constraint fixpoint diverged; "
                "falling back to widening"
            )
            constraints, widen_report = (
                gen_predicate_constraints_widened(program)
            )
            if widen_report.widened_predicates:
                notes.append(
                    "widened: "
                    + ", ".join(sorted(widen_report.widened_predicates))
                )
        return attach_constraints_to_bodies(program, constraints)


def optimize(
    program: Program,
    query: Query,
    strategy: str = "rewrite",
    max_iterations: int = 50,
) -> tuple[Program, str, list[str]]:
    """Apply a named strategy; returns (program, query_pred, notes)."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    with obs_span("optimize", strategy=strategy):
        return _optimize(program, query, strategy, max_iterations)


def _optimize(
    program: Program,
    query: Query,
    strategy: str,
    max_iterations: int,
) -> tuple[Program, str, list[str]]:
    notes: list[str] = []
    query_pred = query.literal.pred
    if strategy == "none":
        return program, query_pred, notes
    if strategy == "pred":
        return _pred_only(program, notes), query_pred, notes
    if strategy == "qrp":
        with obs_span("rewrite.qrp"):
            outcome = gen_prop_qrp_constraints(
                program, query_pred, max_iterations=max_iterations
            )
        if not outcome.report.converged:
            notes.append("qrp fixpoint diverged; widened to true")
        return outcome.program, query_pred, notes
    if strategy == "rewrite":
        outcome = constraint_rewrite(
            program, query_pred, max_iterations=max_iterations
        )
        if not outcome.converged:
            notes.append("a constraint fixpoint diverged; widened")
        return outcome.program, query_pred, notes
    sequence = ["mg"] if strategy == "magic" else ["pred", "qrp", "mg"]
    pipeline = apply_sequence(
        program, query, sequence, max_iterations=max_iterations
    )
    notes.extend(pipeline.notes)
    return pipeline.program, pipeline.query_pred, notes


def answer_query(
    program: Program,
    query: Query,
    edb: Database | None = None,
    strategy: str = "rewrite",
    max_iterations: int = 50,
    eval_iterations: int = 200,
) -> QueryOutcome:
    """Optimize, evaluate bottom-up, and extract the query's answers."""
    with obs_span(
        "query", pred=query.literal.pred, strategy=strategy
    ):
        optimized, query_pred, notes = optimize(
            program, query, strategy, max_iterations
        )
        with obs_span("evaluate"):
            result = evaluate(
                optimized, edb, max_iterations=eval_iterations
            )
        if not result.reached_fixpoint:
            notes.append(
                f"evaluation hit the {eval_iterations}-iteration cap "
                "without reaching a fixpoint; answers may be incomplete"
            )
        effective_query = Query(
            query.literal.with_pred(query_pred), query.constraint
        )
        with obs_span("answers"):
            found = raw_answers(result.database, effective_query)
    return QueryOutcome(
        answers=found,
        result=result,
        program=optimized,
        query=query,
        strategy=strategy,
        notes=notes,
    )


def run_text(
    text: str,
    strategy: str = "rewrite",
    max_iterations: int = 50,
    eval_iterations: int = 200,
) -> list[QueryOutcome]:
    """Parse a program-with-queries text and answer every query."""
    with obs_span("parse"):
        program, queries = parse_program_and_queries(text)
    if not queries:
        raise ValueError("the program text contains no ?- query")
    with obs_span("split_edb"):
        rules, edb = split_edb(program)
    return [
        answer_query(
            rules, query, edb, strategy, max_iterations, eval_iterations
        )
        for query in queries
    ]
