"""One-call optimize-and-answer driver, and the guts of the CLI.

This is the "downstream user" surface: hand it a program text (rules
plus ground facts plus a query) and a strategy name, and it splits the
EDB out, applies the chosen transformation pipeline, evaluates
bottom-up, and returns the answers with full diagnostics.

Strategies (Section 7's vocabulary):

* ``none``           -- evaluate as written;
* ``pred``           -- ``Gen_Prop_predicate_constraints`` only;
* ``qrp``            -- ``Gen_Prop_QRP_constraints`` only;
* ``rewrite``        -- ``Constraint_rewrite`` (pred then qrp);
* ``magic``          -- bf-adorned constraint magic only;
* ``optimal``        -- the Theorem 7.10 order: pred, qrp, mg.

Every run can be governed by a :class:`repro.governor.Budget`
(wall-clock deadline, iteration/fact/solver-call caps).  Exhaustion is
never a stack trace: the ``on_limit`` policy picks a rung of the
degradation ladder (``docs/robustness.md``):

* ``"fail"``     -- raise the typed :class:`BudgetExceeded`;
* ``"truncate"`` -- keep whatever sound partial state exists: an
  exhausted optimization phase is skipped (the program is evaluated as
  written), an exhausted evaluation returns its partial database and
  the outcome is marked ``truncated:<resource>``;
* ``"widen"``    -- like ``truncate``, but an exhausted (or naturally
  diverging) exact constraint fixpoint first falls back to the
  terminating interval-hull widening of :mod:`repro.core.widening`,
  and the outcome is marked ``approximated``.

Independently of any budget, when the exact predicate-constraint
fixpoint diverges the driver falls back to the widening rather than
giving up (the paper's widen-to-*true* is the fallback of last resort
inside that module); the fallback is recorded in ``fallbacks`` and the
outcome's ``completeness``.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field

from repro.constraints import cache as solver_cache
from repro.config import (
    DEFAULT_EVAL_ITERATIONS,
    DEFAULT_REWRITE_ITERATIONS,
)
from repro.core.pipeline import apply_sequence
from repro.core.predconstraints import (
    attach_constraints_to_bodies,
    gen_predicate_constraints,
)
from repro.core.qrp import gen_prop_qrp_constraints
from repro.core.rewrite import constraint_rewrite
from repro.core.widening import gen_predicate_constraints_widened
from repro.engine import Database, EvaluationResult, evaluate
from repro.engine.facts import Fact
from repro.engine.query import answers as raw_answers
from repro.errors import BudgetExceeded, UsageError
from repro.governor import Budget, BudgetMeter
from repro.governor import budget as governor
from repro.lang.ast import Program, Query, Rule
from repro.lang.parser import parse_program_and_queries
from repro.obs.recorder import span as obs_span


STRATEGIES = ("none", "pred", "qrp", "rewrite", "magic", "optimal")

#: The cost-based planner picks one of :data:`STRATEGIES` per query.
AUTO_STRATEGY = "auto"
STRATEGY_CHOICES = STRATEGIES + (AUTO_STRATEGY,)

ON_LIMIT_POLICIES = ("fail", "truncate", "widen")


def validate_strategy(strategy: str, allow_auto: bool = False) -> str:
    """Check a strategy name, returning it; raises :class:`UsageError`.

    ``allow_auto`` additionally admits :data:`AUTO_STRATEGY` for entry
    points that resolve it through the planner before optimizing.
    """
    allowed = STRATEGY_CHOICES if allow_auto else STRATEGIES
    if strategy not in allowed:
        raise UsageError(
            f"unknown strategy {strategy!r}; choose from {allowed}"
        )
    return strategy


@dataclass
class QueryOutcome:
    """Everything a driver run produced.

    ``completeness`` grades the answer set: ``"complete"`` (exact),
    ``"approximated"`` (an over-approximating fallback -- widening or a
    skipped optimization -- was taken; answers are still sound), or
    ``"truncated:<resource>"`` (evaluation stopped early; answers are
    sound but possibly missing).  ``fallbacks`` lists the machine-
    readable degradation steps taken (``"pred:widened"``,
    ``"optimize:skipped"``, ...); ``budget`` is the governing meter's
    consumption snapshot, when a budget governed the run.
    """

    answers: list[Fact]
    result: EvaluationResult
    program: Program                  # the program actually evaluated
    query: Query
    strategy: str
    notes: list[str] = field(default_factory=list)
    completeness: str = "complete"
    fallbacks: list[str] = field(default_factory=list)
    budget: dict | None = None
    #: The planner's :class:`~repro.planner.plan.Plan` when the run
    #: was started with ``--strategy auto`` (``strategy`` then holds
    #: the resolved choice).
    plan: "object | None" = None

    @property
    def answer_strings(self) -> list[str]:
        """Answers rendered as query-variable bindings.

        See :func:`render_answers` for the rendering rules.
        """
        return render_answers(self.query, self.answers)


def render_answers(query: Query, facts: list[Fact]) -> list[str]:
    """Render answer facts as sorted query-variable binding strings.

    The answer facts' arguments correspond to the query's variables in
    sorted name order (see ``repro.lang.normalize.query_as_rule``);
    non-ground answer positions (constraint answers) render as
    ``constrained`` with the fact's constraint appended.
    """
    from fractions import Fraction

    from repro.engine.facts import PENDING

    variables = sorted(query.variables())
    rendered = []
    for fact in facts:
        parts = []
        for name, value in zip(variables, fact.args):
            if value is PENDING:
                parts.append(f"{name}: constrained")
            elif isinstance(value, Fraction):
                shown = (
                    value.numerator
                    if value.denominator == 1
                    else value
                )
                parts.append(f"{name} = {shown}")
            else:
                parts.append(f"{name} = {value.name}")
        suffix = ""
        if not fact.constraint.is_true():
            suffix = f"  [{fact.constraint}]"
        rendered.append(", ".join(parts) + suffix if parts else "yes")
    return sorted(rendered)


def split_edb(program: Program) -> tuple[Program, Database]:
    """Separate ground fact rules into an EDB database.

    A rule qualifies as an EDB fact when it has no body, no constraints
    and a ground head, *and* its predicate has no proper rules.  Other
    facts (e.g. constraint facts, or facts of an otherwise-derived
    predicate) stay in the program.
    """
    proper_heads = {
        rule.head.pred for rule in program if not rule.is_fact
    }
    edb = Database()
    kept: list[Rule] = []
    for rule in program:
        if (
            rule.is_fact
            and rule.constraint.is_true()
            and not rule.head.variables()
            and rule.head.pred not in proper_heads
            and rule.head.is_normalized()
        ):
            values = []
            ground = True
            for arg in rule.head.args:
                from repro.lang.terms import NumTerm, Sym

                if isinstance(arg, Sym):
                    values.append(arg)
                elif isinstance(arg, NumTerm) and arg.is_constant():
                    values.append(arg.value)
                else:  # pragma: no cover - excluded by checks above
                    ground = False
                    break
            if ground:
                edb.add_ground(rule.head.pred, values)
                continue
        kept.append(rule)
    return Program(kept), edb


def _widen_or_raise(error: BudgetExceeded, on_limit: str) -> None:
    """Re-raise unless the widen policy can absorb this exhaustion."""
    if on_limit != "widen" or error.resource == "deadline":
        raise error


def _pred_only(
    program: Program,
    notes: list[str],
    fallbacks: list[str],
    on_limit: str,
) -> Program:
    with obs_span("rewrite.pred"):
        try:
            constraints, report = gen_predicate_constraints(program)
        except BudgetExceeded as error:
            _widen_or_raise(error, on_limit)
            notes.append(
                f"predicate-constraint budget exhausted "
                f"({error.resource}); falling back to widening"
            )
            report = None
        if report is not None and report.converged:
            return attach_constraints_to_bodies(program, constraints)
        if report is not None:
            notes.append(
                "exact predicate-constraint fixpoint diverged; "
                "falling back to widening"
            )
        fallbacks.append("pred:widened")
        constraints, widen_report = (
            gen_predicate_constraints_widened(program)
        )
        if widen_report.widened_predicates:
            notes.append(
                "widened: "
                + ", ".join(sorted(widen_report.widened_predicates))
            )
        return attach_constraints_to_bodies(program, constraints)


def optimize(
    program: Program,
    query: Query,
    strategy: str = "rewrite",
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    fallbacks: list[str] | None = None,
    on_limit: str = "widen",
) -> tuple[Program, str, list[str]]:
    """Apply a named strategy; returns (program, query_pred, notes).

    ``fallbacks``, when given, collects the machine-readable degradation
    steps taken (``"pred:widened"``, ``"qrp:skipped"``, ...) -- callers
    that cache optimized programs must check it, since a degraded
    rewrite is query-specific in ways a clean one is not.  ``on_limit``
    follows the driver policy vocabulary: ``"widen"`` absorbs budget
    exhaustion inside a step, anything else propagates it.
    """
    validate_strategy(strategy)
    with obs_span("optimize", strategy=strategy):
        return _optimize_steps(
            program, query, strategy, max_iterations,
            fallbacks if fallbacks is not None else [], on_limit,
        )


def _optimize_steps(
    program: Program,
    query: Query,
    strategy: str,
    max_iterations: int,
    fallbacks: list[str],
    on_limit: str,
) -> tuple[Program, str, list[str]]:
    notes: list[str] = []
    query_pred = query.literal.pred
    if strategy == "none":
        return program, query_pred, notes
    if strategy == "pred":
        return (
            _pred_only(program, notes, fallbacks, on_limit),
            query_pred,
            notes,
        )
    if strategy == "qrp":
        with obs_span("rewrite.qrp"):
            try:
                outcome = gen_prop_qrp_constraints(
                    program, query_pred, max_iterations=max_iterations
                )
            except BudgetExceeded as error:
                _widen_or_raise(error, on_limit)
                # The trivially-correct QRP constraint is *true*, which
                # rewrites nothing: skipping the step is the widening.
                notes.append(
                    f"qrp budget exhausted ({error.resource}); "
                    "step skipped (QRP constraints widened to true)"
                )
                fallbacks.append("qrp:skipped")
                return program, query_pred, notes
        if not outcome.report.converged:
            notes.append("qrp fixpoint diverged; widened to true")
            fallbacks.append("qrp:widened")
        return outcome.program, query_pred, notes
    if strategy == "rewrite":
        outcome = constraint_rewrite(
            program,
            query_pred,
            max_iterations=max_iterations,
            on_budget=("widen" if on_limit == "widen" else "raise"),
        )
        if not outcome.converged:
            notes.append("a constraint fixpoint diverged; widened")
            fallbacks.append("rewrite:widened")
        return outcome.program, query_pred, notes
    sequence = ["mg"] if strategy == "magic" else ["pred", "qrp", "mg"]
    pipeline = apply_sequence(
        program,
        query,
        sequence,
        max_iterations=max_iterations,
        on_budget=("widen" if on_limit == "widen" else "raise"),
    )
    notes.extend(pipeline.notes)
    fallbacks.extend(
        f"pipeline:{note}" for note in pipeline.notes
        if "widened" in note or "exhausted" in note
    )
    return pipeline.program, pipeline.query_pred, notes


def _resolve_meter(
    budget: "Budget | BudgetMeter | None",
) -> tuple[BudgetMeter | None, BudgetMeter | None]:
    """(meter to install, effective meter) for a budget argument."""
    if budget is None:
        return None, governor.current_meter()
    if isinstance(budget, Budget):
        meter = budget.meter()
    else:
        meter = budget
    return meter, meter


def answer_query(
    program: Program,
    query: Query,
    edb: Database | None = None,
    strategy: str = "rewrite",
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    eval_iterations: int = DEFAULT_EVAL_ITERATIONS,
    budget: "Budget | BudgetMeter | None" = None,
    on_limit: str = "truncate",
) -> QueryOutcome:
    """Optimize, evaluate bottom-up, and extract the query's answers.

    ``budget`` (a :class:`Budget` spec or live :class:`BudgetMeter`)
    governs the run; with ``None`` the ambiently installed meter (if
    any) applies.  ``on_limit`` picks the degradation policy described
    in the module docstring.
    """
    if on_limit not in ON_LIMIT_POLICIES:
        raise UsageError(
            f"unknown on_limit policy {on_limit!r}; "
            f"choose from {ON_LIMIT_POLICIES}"
        )
    own, meter = _resolve_meter(budget)
    with governor.governed(own) if own is not None else _nullcontext():
        return _answer_query_governed(
            program, query, edb, strategy, max_iterations,
            eval_iterations, meter, on_limit,
        )


def _answer_query_governed(
    program: Program,
    query: Query,
    edb: Database | None,
    strategy: str,
    max_iterations: int,
    eval_iterations: int,
    meter: BudgetMeter | None,
    on_limit: str,
) -> QueryOutcome:
    notes: list[str] = []
    fallbacks: list[str] = []
    plan = None
    if strategy == AUTO_STRATEGY:
        plan, strategy = _plan_strategy(program, query, edb, meter)
        runner_up = (
            f"; next {plan.ranking[1][0]!r}"
            if len(plan.ranking) > 1
            else ""
        )
        notes.append(
            f"auto: planner chose {strategy!r} "
            f"(stats {plan.fingerprint}{runner_up})"
        )
    with obs_span(
        "query", pred=query.literal.pred, strategy=strategy
    ):
        try:
            optimized, query_pred, opt_notes = optimize(
                program, query, strategy, max_iterations, fallbacks,
                on_limit,
            )
            notes.extend(opt_notes)
        except BudgetExceeded as error:
            if on_limit == "fail":
                raise
            # Skipping optimization is sound (the rewritings only
            # prune); evaluate the program as written.
            optimized, query_pred = program, query.literal.pred
            notes.append(
                f"optimization budget exhausted ({error.resource}); "
                "evaluating the program as written"
            )
            fallbacks.append("optimize:skipped")
        with obs_span("evaluate"):
            result = evaluate(
                optimized, edb, max_iterations=eval_iterations,
                budget=meter,
            )
        if not result.reached_fixpoint:
            if result.completeness == "truncated:iterations":
                notes.append(
                    "evaluation hit the iteration cap without "
                    "reaching a fixpoint; answers may be incomplete"
                )
            else:
                notes.append(
                    f"evaluation stopped early "
                    f"({result.completeness}); answers may be "
                    "incomplete"
                )
            if (
                on_limit == "fail"
                and meter is not None
                and meter.exhausted is not None
            ):
                raise BudgetExceeded(
                    meter.exhausted, phase="evaluate", partial=result
                )
        effective_query = Query(
            query.literal.with_pred(query_pred), query.constraint
        )
        # Answer extraction renders the partial state; it must not be
        # vetoed by the already-blown budget.
        with (
            meter.paused() if meter is not None else _nullcontext()
        ):
            with obs_span("answers"):
                found = raw_answers(result.database, effective_query)
    if not result.reached_fixpoint:
        completeness = result.completeness
    elif fallbacks:
        completeness = "approximated"
    else:
        completeness = "complete"
    return QueryOutcome(
        answers=found,
        result=result,
        program=optimized,
        query=query,
        strategy=strategy,
        notes=notes,
        completeness=completeness,
        fallbacks=fallbacks,
        budget=meter.snapshot() if meter is not None else None,
        plan=plan,
    )


def _plan_strategy(
    program: Program,
    query: Query,
    edb: Database | None,
    meter: BudgetMeter | None,
):
    """Resolve ``auto``: (plan, concrete strategy) for this query.

    Planning is advisory work, not query work: it runs with the
    request budget paused so an exhausted meter can still pick a
    strategy for the fallback path.
    """
    from repro.planner import collect_stats, plan_query

    with meter.paused() if meter is not None else _nullcontext():
        with obs_span("planner.auto", pred=query.literal.pred):
            stats = collect_stats(edb)
            plan = plan_query(program, query, stats)
    return plan, plan.strategy


def run_text(
    text: str,
    strategy: str = "rewrite",
    max_iterations: int = DEFAULT_REWRITE_ITERATIONS,
    eval_iterations: int = DEFAULT_EVAL_ITERATIONS,
    budget: "Budget | None" = None,
    on_limit: str = "truncate",
) -> list[QueryOutcome]:
    """Parse a program-with-queries text and answer every query.

    All queries share one budget meter (the deadline and the caps are
    per *run*, not per query).  The meter's consumption is recorded on
    a ``governor`` span and in each outcome's ``budget`` snapshot.
    """
    validate_strategy(strategy, allow_auto=True)
    # Each batch run starts from a cold solver memo so its counters and
    # reports are deterministic regardless of what ran earlier in the
    # process (the long-lived serve path deliberately keeps its warmth).
    solver_cache.clear()
    if on_limit not in ON_LIMIT_POLICIES:
        raise UsageError(
            f"unknown on_limit policy {on_limit!r}; "
            f"choose from {ON_LIMIT_POLICIES}"
        )
    with obs_span("parse"):
        program, queries = parse_program_and_queries(text)
    if not queries:
        raise UsageError("the program text contains no ?- query")
    with obs_span("split_edb"):
        rules, edb = split_edb(program)
    meter = budget.meter() if budget is not None else None
    if meter is None:
        return [
            answer_query(
                rules, query, edb, strategy, max_iterations,
                eval_iterations, on_limit=on_limit,
            )
            for query in queries
        ]
    with obs_span(
        "governor",
        on_limit=on_limit,
        **{
            f"budget.{name}": value
            for name, value in (
                ("deadline", budget.deadline),
                ("max_iterations", budget.max_iterations),
                ("max_rewrite_iterations",
                 budget.max_rewrite_iterations),
                ("max_facts", budget.max_facts),
                ("max_solver_calls", budget.max_solver_calls),
            )
            if value is not None
        },
    ) as gspan:
        with governor.governed(meter):
            outcomes = [
                answer_query(
                    rules, query, edb, strategy, max_iterations,
                    eval_iterations, on_limit=on_limit,
                )
                for query in queries
            ]
        snapshot = meter.snapshot()
        gspan.set("elapsed_seconds", snapshot["elapsed_seconds"])
        gspan.set("spent", snapshot["spent"])
        if snapshot["exhausted"]:
            gspan.set("exhausted", snapshot["exhausted"])
        fallbacks = sorted(
            {step for outcome in outcomes for step in outcome.fallbacks}
        )
        if fallbacks:
            gspan.set("fallbacks", fallbacks)
    return outcomes
