"""Answer extraction: matching a query against an evaluated database.

A query ``?- C, q(ā)`` is answered by the facts of ``q`` compatible
with the constants in ``ā`` and the constraint ``C``.  Implementation
reuses the rule evaluator: the query is turned into the single-rule
program ``_answer(X̄) :- C, q(ā)`` and applied once to the database.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.ruleeval import RuleEvaluator, database_view
from repro.lang.ast import Query
from repro.lang.normalize import normalize_rule, query_as_rule


ANSWER_PRED = "_answer"


def answers(database: Database, query: Query) -> list[Fact]:
    """All answer facts for the query over the database.

    Each answer is a fact of the synthetic ``_answer`` predicate whose
    arguments are the query's variables in sorted name order.
    """
    rule = normalize_rule(query_as_rule(query, ANSWER_PRED))
    evaluator = RuleEvaluator(rule)
    view = database_view(database)
    results: list[Fact] = []
    seen: set[Fact] = set()
    for fact in evaluator.derive(view):
        if fact not in seen:
            seen.add(fact)
            results.append(fact)
    return results


def has_answer(database: Database, query: Query) -> bool:
    """Does the query have at least one answer?"""
    return bool(answers(database, query))
