"""Facts: ground facts and constraint facts in canonical form.

A :class:`Fact` for an ``n``-ary predicate stores one *value* per
argument position:

* a :class:`~repro.lang.terms.Sym` -- a symbolic constant,
* a :class:`fractions.Fraction` -- a fixed numeric value,
* :data:`PENDING` -- a numerically constrained position, governed by the
  fact's :class:`~repro.constraints.conjunction.Conjunction` over the
  position variables ``$1 .. $n``.

Canonicalization performed by :func:`make_fact` guarantees that

* the constraint mentions only PENDING positions,
* any position whose constraint forces a unique value is turned into a
  fixed numeric value (so ``is_ground`` is a syntactic check), and
* the constraint conjunction is satisfiable and redundancy-free,

which makes hash-based deduplication effective and keeps the subsumption
test (:meth:`Fact.subsumes`) simple.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Union

from repro.constraints.atom import Atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr
from repro.lang.positions import arg_position
from repro.lang.terms import Sym


class _Pending:
    """Singleton marker for a constrained (non-fixed) argument position."""

    _instance: "_Pending | None" = None

    def __new__(cls) -> "_Pending":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PENDING"


PENDING = _Pending()

Value = Union[Sym, Fraction, _Pending]


def _coerce_value(value: object) -> Value:
    if isinstance(value, (_Pending, Sym, Fraction)):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not CQL values")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Sym(value)
    if value is None:
        return PENDING
    raise TypeError(f"cannot use {value!r} as a fact argument")


class Fact:
    """An immutable, canonical (possibly constraint) fact."""

    __slots__ = ("pred", "args", "constraint", "_hash", "_full")

    def __init__(
        self,
        pred: str,
        args: tuple[Value, ...],
        constraint: Conjunction,
    ) -> None:
        # Callers should use make_fact / Fact.ground, which canonicalize.
        self.pred = pred
        self.args = args
        self.constraint = constraint
        self._hash: int | None = None
        self._full: Conjunction | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def ground(pred: str, values: Iterable[object]) -> "Fact":
        """A ground fact; ints become Fractions, strings become Syms."""
        args = tuple(_coerce_value(value) for value in values)
        if any(isinstance(arg, _Pending) for arg in args):
            raise ValueError("ground facts cannot have pending positions")
        return Fact(pred, args, Conjunction.true())

    # -- inspection ---------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def is_ground(self) -> bool:
        """Does the object contain no PENDING position?"""
        return not any(isinstance(arg, _Pending) for arg in self.args)

    def pending_positions(self) -> tuple[int, ...]:
        """1-based positions still governed by the constraint."""
        return tuple(
            index
            for index, arg in enumerate(self.args, start=1)
            if isinstance(arg, _Pending)
        )

    def ground_tuple(self) -> tuple[Sym | Fraction, ...]:
        """The argument values; raises unless ground."""
        if not self.is_ground():
            raise ValueError(f"{self} is not ground")
        return self.args  # type: ignore[return-value]

    def full_conjunction(self) -> Conjunction:
        """The fact's meaning over ``$1..$n`` with numeric fixes explicit.

        Symbolic positions carry no arithmetic constraint.  Memoized:
        subsumption checks call this repeatedly per stored fact, and the
        interned result is a single shared object.
        """
        if self._full is not None:
            return self._full
        atoms: list[Atom] = list(self.constraint.atoms)
        for index, arg in enumerate(self.args, start=1):
            if isinstance(arg, Fraction):
                atoms.append(
                    Atom.eq(
                        LinearExpr.var(arg_position(index)),
                        LinearExpr.const(arg),
                    )
                )
        self._full = Conjunction(atoms)
        return self._full

    # -- subsumption ----------------------------------------------------

    def subsumes(self, other: "Fact") -> bool:
        """Does this fact cover every ground instance of ``other``?

        Positions are compared sort-wise: symbolic positions must match
        exactly; a PENDING position whose constraint does not mention it
        is a wildcard and covers anything (including symbols); numeric
        positions reduce to constraint implication.
        """
        if self.pred != other.pred or self.arity != other.arity:
            return False
        my_vars = self.constraint.variables()
        for index, (mine, theirs) in enumerate(
            zip(self.args, other.args), start=1
        ):
            position = arg_position(index)
            if isinstance(mine, Sym):
                if mine != theirs:
                    return False
            elif isinstance(mine, Fraction):
                if mine != theirs:
                    return False
            else:  # mine is PENDING
                if isinstance(theirs, Sym):
                    if position in my_vars:
                        return False
                # Fraction / PENDING handled by implication below.
        return other.full_conjunction().implies(self.full_conjunction())

    # -- comparisons ----------------------------------------------------

    def _key(self) -> tuple:
        return (self.pred, self.args, self.constraint)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"Fact({self})"

    def __str__(self) -> str:
        rendered: list[str] = []
        pending_index = 0
        for index, arg in enumerate(self.args, start=1):
            if isinstance(arg, _Pending):
                rendered.append(arg_position(index))
                pending_index += 1
            elif isinstance(arg, Fraction):
                rendered.append(
                    str(arg) if arg.denominator != 1 else str(arg.numerator)
                )
            else:
                rendered.append(arg.name)
        inner = ", ".join(rendered)
        if self.constraint.is_true():
            return f"{self.pred}({inner})"
        return f"{self.pred}({inner}; {self.constraint})"


def make_fact(
    pred: str,
    values: Sequence[object],
    constraint: Conjunction = Conjunction.true(),
) -> Fact | None:
    """Build a canonical fact; ``None`` when the constraint is unsatisfiable.

    ``values`` entries may be Syms, strings, ints, Fractions, or
    ``None``/:data:`PENDING` for constrained positions.  The constraint
    is given over ``$1..$n`` and is projected onto the pending positions;
    positions it forces to a unique value become fixed numeric values.
    """
    args = [_coerce_value(value) for value in values]
    pending_vars = {
        arg_position(index)
        for index, arg in enumerate(args, start=1)
        if isinstance(arg, _Pending)
    }
    fixed_atoms: list[Atom] = []
    for index, arg in enumerate(args, start=1):
        if isinstance(arg, Fraction) and arg_position(index) in (
            constraint.variables()
        ):
            fixed_atoms.append(
                Atom.eq(
                    LinearExpr.var(arg_position(index)),
                    LinearExpr.const(arg),
                )
            )
    conjunction = constraint.conjoin(fixed_atoms).project(pending_vars)
    if not conjunction.is_satisfiable():
        return None
    # Freeze positions forced to a unique value.
    changed = True
    while changed:
        changed = False
        for index, arg in enumerate(args, start=1):
            if not isinstance(arg, _Pending):
                continue
            position = arg_position(index)
            if position not in conjunction.variables():
                continue
            forced = conjunction.forced_value(position)
            if forced is not None:
                args[index - 1] = forced
                conjunction = conjunction.substitute(
                    {position: LinearExpr.const(forced)}
                )
                changed = True
    conjunction = conjunction.canonical()
    return Fact(pred, tuple(args), conjunction)
