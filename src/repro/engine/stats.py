"""Counters describing a bottom-up evaluation run.

The paper compares rewritten programs by "the number of facts computed"
and "the set of derivations made" (Theorems 4.4, 4.6, 7.2, ...); these
are exactly the counters collected here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class EvalStats:
    """Aggregate counters of one evaluation."""

    derivations: int = 0
    new_facts: int = 0
    duplicates: int = 0
    subsumed: int = 0
    iterations: int = 0
    probes: int = 0
    swept: int = 0
    facts_by_pred: Counter = field(default_factory=Counter)
    derivations_by_rule: Counter = field(default_factory=Counter)

    def record(self, rule_label: str | None, pred: str, outcome: str) -> None:
        """Count one derivation with its insertion outcome."""
        self.derivations += 1
        self.derivations_by_rule[rule_label or "?"] += 1
        if outcome == "new":
            self.new_facts += 1
            self.facts_by_pred[pred] += 1
        elif outcome == "duplicate":
            self.duplicates += 1
        else:
            self.subsumed += 1

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.new_facts} facts in {self.iterations} iterations "
            f"({self.derivations} derivations, "
            f"{self.duplicates} duplicates, {self.subsumed} subsumed)"
        )
