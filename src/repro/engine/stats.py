"""Counters describing a bottom-up evaluation run.

The paper compares rewritten programs by "the number of facts computed"
and "the set of derivations made" (Theorems 4.4, 4.6, 7.2, ...); these
are exactly the counters collected here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.engine.relation import InsertOutcome


@dataclass
class EvalStats:
    """Aggregate counters of one evaluation."""

    derivations: int = 0
    new_facts: int = 0
    duplicates: int = 0
    subsumed: int = 0
    iterations: int = 0
    probes: int = 0
    swept: int = 0
    facts_by_pred: Counter = field(default_factory=Counter)
    derivations_by_rule: Counter = field(default_factory=Counter)

    def record(
        self, rule_label: str | None, pred: str, outcome: InsertOutcome
    ) -> None:
        """Count one derivation with its insertion outcome.

        ``outcome`` must be an :class:`InsertOutcome`; passing the
        stringly form would silently miscount typos as "subsumed", so
        it is rejected.
        """
        if not isinstance(outcome, InsertOutcome):
            raise TypeError(
                f"outcome must be an InsertOutcome, got {outcome!r}"
            )
        self.derivations += 1
        self.derivations_by_rule[rule_label or "?"] += 1
        if outcome is InsertOutcome.NEW:
            self.new_facts += 1
            self.facts_by_pred[pred] += 1
        elif outcome is InsertOutcome.DUPLICATE:
            self.duplicates += 1
        else:
            self.subsumed += 1

    def as_dict(self) -> dict:
        """A plain-data copy (for run reports and benchmarks)."""
        return {
            "derivations": self.derivations,
            "new_facts": self.new_facts,
            "duplicates": self.duplicates,
            "subsumed": self.subsumed,
            "iterations": self.iterations,
            "probes": self.probes,
            "swept": self.swept,
            "facts_by_pred": dict(self.facts_by_pred),
            "derivations_by_rule": dict(self.derivations_by_rule),
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.new_facts} facts in {self.iterations} iterations "
            f"({self.derivations} derivations, "
            f"{self.duplicates} duplicates, {self.subsumed} subsumed)"
        )
