"""Relations: stamped, subsumption-checked fact stores with indexes.

A relation stores the facts of one predicate.  Each fact carries the
iteration *stamp* at which it was added, which is what the semi-naive
evaluator filters on (delta vs. old vs. full views).  Insertion rejects
facts subsumed by an existing fact (the paper's "subsumed facts ... are
discarded, and are not used to make new derivations").

Two indexes accelerate joins:

* a per-position hash index on fixed (Sym/Fraction) values, and
* a per-position *ordered* index on numeric values, supporting the
  range probes that Section 4.6 points out constraint selections
  enable ("the constraints Cost <= 150 and Time <= 240 could be used
  to efficiently retrieve (via B trees, etc.) singleleg tuples").

Facts whose value at the probed position is PENDING are kept in a side
list since they may cover any probed value or range.
"""

from __future__ import annotations

import bisect
import enum
from fractions import Fraction
from typing import Iterable, Iterator

from repro.engine.facts import Fact, PENDING, Value
from repro.lang.terms import Sym
from repro.obs.recorder import count as obs_count


class Range:
    """A (possibly half-open) numeric interval used for index probes."""

    __slots__ = ("lower", "lower_strict", "upper", "upper_strict")

    def __init__(
        self,
        lower: Fraction | None = None,
        lower_strict: bool = False,
        upper: Fraction | None = None,
        upper_strict: bool = False,
    ) -> None:
        self.lower = lower
        self.lower_strict = lower_strict
        self.upper = upper
        self.upper_strict = upper_strict

    def admits(self, value: Fraction) -> bool:
        """Is the value inside the range?"""
        if self.lower is not None:
            if value < self.lower:
                return False
            if self.lower_strict and value == self.lower:
                return False
        if self.upper is not None:
            if value > self.upper:
                return False
            if self.upper_strict and value == self.upper:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        left = "(" if self.lower_strict else "["
        right = ")" if self.upper_strict else "]"
        return f"Range{left}{self.lower}, {self.upper}{right}"


class InsertOutcome(enum.Enum):
    """What happened when a fact was inserted."""
    NEW = "new"
    DUPLICATE = "duplicate"
    SUBSUMED = "subsumed"


class Relation:
    """The stamped fact store of a single predicate."""

    def __init__(self, pred: str, arity: int) -> None:
        self.pred = pred
        self.arity = arity
        # The fact store: an insertion-ordered dict carrying the stamps.
        self._stamps: dict[Fact, int] = {}
        # Monotonic insertion sequence: the ordered-index tie-breaker.
        # (A length-based tie-break would collide after remove() and
        # make bisect compare the unorderable Fact objects.)
        self._seqs: dict[Fact, int] = {}
        self._next_seq = 0
        # _fixed[pos][value] -> facts with that fixed value at pos;
        # _pending[pos] -> facts with PENDING at pos;
        # _ordered[pos] -> (numeric value, insertion seq, fact), sorted.
        self._fixed: list[dict[Value, list[Fact]]] = [
            {} for _ in range(arity)
        ]
        self._pending: list[list[Fact]] = [[] for _ in range(arity)]
        self._ordered: list[list[tuple[Fraction, int, Fact]]] = [
            [] for _ in range(arity)
        ]

    # -- inspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._stamps)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._stamps)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._stamps

    @property
    def facts(self) -> tuple[Fact, ...]:
        """The stored facts of a predicate."""
        return tuple(self._stamps)

    def stamp(self, fact: Fact) -> int:
        """The iteration stamp a fact was inserted at."""
        return self._stamps[fact]

    # -- modification ---------------------------------------------------

    def insert(self, fact: Fact, stamp: int = 0) -> InsertOutcome:
        """Insert unless a syntactic duplicate or semantically subsumed."""
        if fact.pred != self.pred or fact.arity != self.arity:
            raise ValueError(
                f"fact {fact} does not belong to relation "
                f"{self.pred}/{self.arity}"
            )
        obs_count("relation.inserts")
        if fact in self._stamps:
            return InsertOutcome.DUPLICATE
        for existing in self._candidate_subsumers(fact):
            obs_count("constraint.subsumption_tests")
            if existing.subsumes(fact):
                return InsertOutcome.SUBSUMED
        self._stamps[fact] = stamp
        seq = self._next_seq
        self._next_seq += 1
        self._seqs[fact] = seq
        for position in range(self.arity):
            value = fact.args[position]
            if value is PENDING:
                self._pending[position].append(fact)
            else:
                self._fixed[position].setdefault(value, []).append(fact)
                if isinstance(value, Fraction):
                    bisect.insort(
                        self._ordered[position], (value, seq, fact)
                    )
        return InsertOutcome.NEW

    def remove(self, fact: Fact) -> None:
        """Remove a stored fact (backward-subsumption support)."""
        if fact not in self._stamps:
            raise KeyError(f"{fact} is not stored")
        del self._stamps[fact]
        seq = self._seqs.pop(fact)
        for position in range(self.arity):
            value = fact.args[position]
            if value is PENDING:
                self._pending[position].remove(fact)
            else:
                bucket = self._fixed[position][value]
                bucket.remove(fact)
                if not bucket:
                    del self._fixed[position][value]
                if isinstance(value, Fraction):
                    # (value, seq) is a strict prefix of the stored
                    # (value, seq, fact) entry, so bisect lands on it
                    # without ever comparing Fact objects.
                    ordered = self._ordered[position]
                    index = bisect.bisect_left(ordered, (value, seq))
                    ordered.pop(index)

    def sweep_subsumed_by(self, fact: Fact) -> list[Fact]:
        """Remove stored facts the given (stored) fact subsumes.

        Returns the removed facts.  Used by the evaluator's backward-
        subsumption pass: a newly derived, more general fact covers all
        future uses of the facts it subsumes (it carries an equal or
        newer stamp, so semi-naive deltas still see it).
        """
        bound = {
            position: value
            for position, value in enumerate(fact.args)
            if value is not PENDING
        }
        removed = []
        for candidate in list(self.matching(bound or None)):
            if candidate is fact:
                continue
            obs_count("constraint.subsumption_tests")
            if fact.subsumes(candidate):
                self.remove(candidate)
                removed.append(candidate)
        return removed

    def _candidate_subsumers(self, fact: Fact) -> Iterable[Fact]:
        """Facts that could subsume ``fact`` (index-pruned superset)."""
        best: Iterable[Fact] | None = None
        best_size: int | None = None
        for position in range(self.arity):
            value = fact.args[position]
            if value is PENDING:
                continue
            bucket = self._fixed[position].get(value, [])
            candidates_size = len(bucket) + len(self._pending[position])
            if best_size is None or candidates_size < best_size:
                best_size = candidates_size
                best = [*bucket, *self._pending[position]]
        if best is None:
            return list(self._stamps)
        return best

    # -- lookups ----------------------------------------------------------

    def _range_candidates(
        self, position: int, probe: Range
    ) -> list[Fact]:
        """Ordered-index scan of a position for a numeric range."""
        obs_count("relation.range_scans")
        ordered = self._ordered[position]
        low = 0
        high = len(ordered)
        if probe.lower is not None:
            low = bisect.bisect_left(ordered, (probe.lower,))
        if probe.upper is not None:
            # (value, seq, fact) tuples: a sentinel beyond any seq.
            high = bisect.bisect_right(
                ordered, (probe.upper, float("inf"))
            )
        selected = [
            fact
            for value, __, fact in ordered[low:high]
            if probe.admits(value)
        ]
        return selected + self._pending[position]

    def matching(
        self,
        bound: dict[int, Sym | Fraction] | None = None,
        max_stamp: int | None = None,
        exact_stamp: int | None = None,
        ranges: dict[int, Range] | None = None,
    ) -> Iterator[Fact]:
        """Facts compatible with fixed values / ranges at 0-based positions.

        A fact is *compatible* when each bound position holds either the
        same fixed value or PENDING (the constraint may still rule the
        value out; the join's satisfiability check decides that), and
        each ranged position holds a value inside the range or PENDING.
        Stamp filters select the semi-naive views.  The probe uses
        whichever single index (hash bucket or ordered range) promises
        the fewest candidates; remaining conditions filter.
        """
        candidates: Iterable[Fact] | None = None
        best_size: int | None = None
        if bound:
            position, value = min(
                bound.items(),
                key=lambda item: len(
                    self._fixed[item[0]].get(item[1], [])
                )
                + len(self._pending[item[0]]),
            )
            candidates = [
                *self._fixed[position].get(value, []),
                *self._pending[position],
            ]
            best_size = len(candidates)  # type: ignore[arg-type]
        if ranges:
            for position, probe in ranges.items():
                if bound and position in bound:
                    continue
                scanned = self._range_candidates(position, probe)
                if best_size is None or len(scanned) < best_size:
                    candidates = scanned
                    best_size = len(scanned)
        if candidates is None:
            # Materialized so concurrent inserts (derivations landing
            # while a join iterates this view) cannot invalidate it.
            candidates = list(self._stamps)
        for fact in candidates:
            stamp = self._stamps[fact]
            if max_stamp is not None and stamp > max_stamp:
                continue
            if exact_stamp is not None and stamp != exact_stamp:
                continue
            if bound and not _compatible(fact, bound):
                continue
            if ranges and not _in_ranges(fact, ranges):
                continue
            yield fact

    def __str__(self) -> str:
        inner = ", ".join(str(fact) for fact in self._stamps)
        return f"{{{inner}}}"


def _compatible(fact: Fact, bound: dict[int, Sym | Fraction]) -> bool:
    for position, value in bound.items():
        actual = fact.args[position]
        if actual is PENDING:
            continue
        if actual != value:
            return False
    return True


def _in_ranges(fact: Fact, ranges: dict[int, Range]) -> bool:
    for position, probe in ranges.items():
        actual = fact.args[position]
        if actual is PENDING or isinstance(actual, Sym):
            continue  # pending may qualify; symbols fail later in unify
        if not probe.admits(actual):
            return False
    return True
