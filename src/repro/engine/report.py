"""Paper-style rendering of evaluation results.

``render_derivation_table`` prints an :class:`EvaluationResult`'s
iteration log in the format of the paper's Tables 1 and 2 (discarded
facts marked, matching the boldface convention), and
``render_comparison`` prints side-by-side statistics of several
evaluations -- the building blocks the benchmark harness and the
examples use for human-readable output.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine.fixpoint import EvaluationResult
from repro.engine.relation import InsertOutcome


def render_derivation_table(
    result: EvaluationResult,
    title: str = "Derivations in a bottom-up evaluation",
    mark_discarded: str = "*",
) -> str:
    """The paper's Table 1/2 format.

    Discarded (duplicate or subsumed) derivations are suffixed with
    ``mark_discarded`` -- the paper prints them in boldface.
    """
    width = len("Iteration")
    lines = [title, "", f"{'Iteration':<{width}}  Derivations made"]
    for log in result.iterations:
        rendered = []
        for derivation in log.derivations:
            label = derivation.rule_label or "?"
            entry = f"{label}:{derivation.fact}"
            if derivation.outcome is not InsertOutcome.NEW:
                entry += mark_discarded
            rendered.append(entry)
        body = "{" + ", ".join(rendered) + "}"
        lines.append(f"{log.number:<{width}}  {body}")
    if not result.reached_fixpoint:
        lines.append(
            f"{'...':<{width}}  (iteration cap reached; "
            "the evaluation does not terminate)"
        )
    else:
        lines.append(
            f"{'':<{width}}  (fixpoint after iteration "
            f"{result.iterations[-1].number})"
        )
    if mark_discarded:
        lines.append("")
        lines.append(
            f"  {mark_discarded} = subsumed/duplicate, discarded "
            "(the paper's boldface)"
        )
    return "\n".join(lines)


def render_comparison(
    results: Mapping[str, EvaluationResult],
    predicates: list[str] | None = None,
) -> str:
    """Side-by-side fact/derivation statistics of several evaluations."""
    names = list(results)
    headers = ["", *names]
    rows: list[list[str]] = []
    rows.append(
        ["total facts", *[str(results[n].count()) for n in names]]
    )
    rows.append(
        [
            "derivations",
            *[str(results[n].stats.derivations) for n in names],
        ]
    )
    rows.append(
        [
            "iterations",
            *[str(results[n].stats.iterations) for n in names],
        ]
    )
    rows.append(
        [
            "fixpoint",
            *[
                "yes" if results[n].reached_fixpoint else "NO"
                for n in names
            ],
        ]
    )
    for pred in predicates or []:
        rows.append(
            [
                f"{pred} facts",
                *[str(results[n].count(pred)) for n in names],
            ]
        )
    widths = [
        max(len(row[col]) for row in [headers, *rows])
        for col in range(len(headers))
    ]
    lines = []
    for row in [headers, *rows]:
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)
