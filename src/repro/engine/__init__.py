"""Bottom-up evaluation of CQL programs over constraint facts.

The engine implements the rule-application step of Section 2: choose a
fact for each body literal, conjoin the argument equalities with the
rule's constraints and the facts' constraints, check satisfiability, and
eliminate the non-head variables by exact quantifier elimination.  Facts
may be ground or *constraint facts* ``p(X̄; C)``; newly derived facts
are discarded when subsumed by previously known ones.

Both naive and semi-naive fixpoint evaluation are provided, with
per-iteration derivation logs (used to regenerate the paper's Tables 1
and 2) and an iteration cap so that non-terminating evaluations -- a
phenomenon the paper studies -- are a reportable outcome rather than a
hang.
"""

from repro.engine.facts import Fact, PENDING, Value
from repro.engine.database import Database
from repro.engine.relation import InsertOutcome, Relation
from repro.engine.fixpoint import (
    EvaluationResult,
    IterationLog,
    evaluate,
    naive_evaluate,
    resume,
    seminaive_evaluate,
)
from repro.engine.stats import EvalStats

__all__ = [
    "Fact",
    "PENDING",
    "Value",
    "Database",
    "Relation",
    "InsertOutcome",
    "evaluate",
    "naive_evaluate",
    "resume",
    "seminaive_evaluate",
    "EvaluationResult",
    "IterationLog",
    "EvalStats",
]
