"""Naive and semi-naive fixpoint evaluation with derivation logs.

Evaluation starts from the constraint facts in the database and applies
all rules in iterations until no new facts are computed (Section 2).
Facts carry the iteration stamp at which they were derived; semi-naive
evaluation requires each derivation to use at least one fact from the
previous iteration's delta, using the standard non-overlapping split
(earlier literals see the full previous view, the delta literal sees
exactly the delta, later literals see the pre-delta view), so each
derivation is attempted exactly once -- which is what makes the
per-iteration derivation logs comparable with the paper's Tables 1/2.

Programs in a CQL may not terminate (Example 1.2); the ``max_iterations``
cap makes that a reported outcome (``reached_fixpoint=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.config import DEFAULT_EVAL_ITERATIONS
from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.relation import InsertOutcome
from repro.engine.ruleeval import RuleEvaluator, database_view
from repro.engine.stats import EvalStats
from repro.errors import BudgetExceeded
from repro.governor import budget as governor
from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.obs.recorder import count as obs_count, span as obs_span


_OUTCOME_COUNTERS = {
    InsertOutcome.NEW: "engine.facts.new",
    InsertOutcome.DUPLICATE: "engine.facts.duplicate",
    InsertOutcome.SUBSUMED: "engine.facts.subsumed",
}


@dataclass(frozen=True)
class Derivation:
    """One successful derivation and what became of the derived fact.

    ``parents`` are the body facts used, in body-literal order --
    enough to rebuild the derivation trees of Definition 2.2 (see
    :mod:`repro.core.relevance`).
    """

    rule_label: str | None
    fact: Fact
    outcome: InsertOutcome
    parents: tuple[Fact, ...] = ()

    def __str__(self) -> str:
        marker = "" if self.outcome is InsertOutcome.NEW else " [discarded]"
        label = self.rule_label or "?"
        return f"{label}: {self.fact}{marker}"


@dataclass
class IterationLog:
    """All derivations made during one iteration."""

    number: int
    derivations: list[Derivation] = field(default_factory=list)

    def new_facts(self) -> list[Fact]:
        """The facts this iteration actually added."""
        return [
            derivation.fact
            for derivation in self.derivations
            if derivation.outcome is InsertOutcome.NEW
        ]

    def __str__(self) -> str:
        inner = ", ".join(str(derivation) for derivation in self.derivations)
        return f"iteration {self.number}: {{{inner}}}"


@dataclass
class EvaluationResult:
    """The outcome of a bottom-up fixpoint evaluation.

    ``completeness`` is ``"complete"`` when a fixpoint was reached and
    ``"truncated:<resource>"`` when evaluation stopped early -- the
    resource is ``iterations`` for the plain iteration cap, or the
    budget dimension that tripped (``deadline``, ``facts``,
    ``solver_calls``).  A truncated result is still a *usable partial
    state*: every stored fact is soundly derived, only completeness of
    the answer set is lost.
    """

    database: Database
    iterations: list[IterationLog]
    reached_fixpoint: bool
    stats: EvalStats
    program: Program
    completeness: str = "complete"

    @property
    def truncated(self) -> bool:
        """True when evaluation stopped before reaching a fixpoint."""
        return self.completeness != "complete"

    def facts(self, pred: str) -> tuple[Fact, ...]:
        """The stored facts of a predicate."""
        return self.database.facts(pred)

    def count(self, pred: str | None = None) -> int:
        """Number of stored facts (of one predicate, or all)."""
        return self.database.count(pred)

    def trace(self) -> str:
        """The full iteration log as text."""
        lines = [str(log) for log in self.iterations]
        if not self.reached_fixpoint:
            lines.append("... (iteration cap reached; no fixpoint)")
        return "\n".join(lines)


def evaluate(
    program: Program,
    edb: Database | None = None,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
    strategy: str = "seminaive",
    use_range_index: bool = True,
    backward_subsumption: bool = False,
    budget: "governor.BudgetMeter | None" = None,
) -> EvaluationResult:
    """Evaluate a program bottom-up over an input database.

    ``strategy`` is ``"seminaive"`` (default) or ``"naive"``.  The input
    database is not modified.  Iteration numbering starts at 0, matching
    the paper's tables: iteration 0 applies the rules to the EDB alone,
    so with an empty EDB it derives exactly the programs' fact rules.
    ``use_range_index`` pushes single-variable rule constraints into
    ordered-index range probes (Section 4.6); disabling it is only
    useful for the indexing ablation benchmark.

    ``backward_subsumption`` additionally removes *stored* facts that a
    newly derived, more general fact subsumes (forward subsumption --
    discarding new facts covered by stored ones -- is always on, per the
    paper).  Sound because the subsuming fact carries an equal-or-newer
    stamp, so every future derivation from a removed fact is covered.

    ``budget`` is an optional :class:`repro.governor.BudgetMeter`; when
    omitted, the ambiently installed meter (if any) governs the run.
    Budget exhaustion mid-evaluation does not raise out of this
    function: the loop stops at the nearest cooperative checkpoint and
    the partial state is returned with
    ``completeness="truncated:<resource>"`` (callers that want fail
    semantics re-raise -- see ``repro.driver``).
    """
    if strategy not in ("seminaive", "naive"):
        raise ValueError(f"unknown strategy {strategy!r}")
    meter = budget if budget is not None else governor.current_meter()
    with obs_span("normalize"):
        normalized = normalize_program(program)
    database = edb.copy() if edb is not None else Database()
    evaluators = [
        RuleEvaluator(rule, use_ranges=use_range_index)
        for rule in normalized
    ]
    # Pre-create relations for every predicate so lookups are uniform.
    for rule in normalized:
        for literal in (rule.head, *rule.body):
            database.relation(literal.pred, literal.arity)
    stats = EvalStats()
    logs: list[IterationLog] = []
    with obs_span(
        "fixpoint", strategy=strategy, rules=len(normalized)
    ) as fixpoint_span:
        reached_fixpoint, tripped = _run_fixpoint(
            database, evaluators, strategy,
            first_iteration=1, last_iteration=max_iterations,
            meter=meter, stats=stats, logs=logs,
            backward_subsumption=backward_subsumption, cold_start=True,
        )
        fixpoint_span.set("iterations", stats.iterations)
        fixpoint_span.set("reached_fixpoint", reached_fixpoint)
        if tripped is not None:
            fixpoint_span.set("truncated", tripped)
    stats.probes = sum(evaluator.probes for evaluator in evaluators)
    obs_count("engine.join_probes", stats.probes)
    obs_count("engine.iterations", stats.iterations)
    if reached_fixpoint:
        completeness = "complete"
    else:
        completeness = f"truncated:{tripped or 'iterations'}"
    return EvaluationResult(
        database=database,
        iterations=logs,
        reached_fixpoint=reached_fixpoint,
        stats=stats,
        program=normalized,
        completeness=completeness,
    )


def _run_fixpoint(
    database: Database,
    evaluators: "list[RuleEvaluator]",
    strategy: str,
    first_iteration: int,
    last_iteration: int,
    meter: "governor.BudgetMeter | None",
    stats: EvalStats,
    logs: list[IterationLog],
    backward_subsumption: bool,
    cold_start: bool,
) -> tuple[bool, str | None]:
    """The fixpoint iteration loop shared by cold and resumed runs.

    Iteration numbers run ``first_iteration..last_iteration``; derived
    facts are stamped with the iteration number.  With ``cold_start``
    the first iteration applies every rule (fact rules included) to the
    full pre-existing view; a resumed run always uses the semi-naive
    delta split (the delta being whatever carries the stamp
    ``first_iteration - 1``).  Returns ``(reached_fixpoint, tripped)``
    where ``tripped`` names the budget resource that stopped the run.
    """
    reached_fixpoint = False
    tripped: str | None = None
    for iteration in range(first_iteration, last_iteration + 1):
        log = IterationLog(number=iteration - 1)
        try:
            if meter is not None:
                meter.checkpoint("evaluate")
                meter.charge("iterations", phase="evaluate")
            with obs_span(
                "iteration", number=iteration - 1
            ) as it_span:
                for evaluator in evaluators:
                    if meter is not None:
                        meter.checkpoint("rule")
                    rule = evaluator.rule
                    if strategy == "naive" or (
                        cold_start and iteration == first_iteration
                    ):
                        views = [
                            database_view(
                                database, max_stamp=iteration - 1
                            )
                        ]
                    elif rule.is_fact:
                        continue  # fact rules fire at the first iteration
                    else:
                        views = [
                            database_view(
                                database,
                                max_stamp=iteration - 1,
                                exact_stamp_index=index,
                                exact_stamp=iteration - 1,
                                old_stamp=iteration - 2,
                            )
                            for index in range(len(rule.body))
                        ]
                    with obs_span("rule", label=rule.label or "?"):
                        for view in views:
                            for fact, parents in (
                                evaluator.derive_with_parents(view)
                            ):
                                outcome = database.insert(
                                    fact, stamp=iteration
                                )
                                log.derivations.append(
                                    Derivation(
                                        rule.label, fact, outcome,
                                        parents,
                                    )
                                )
                                stats.record(
                                    rule.label, fact.pred, outcome
                                )
                                obs_count("engine.derivations")
                                obs_count(_OUTCOME_COUNTERS[outcome])
                                if (
                                    outcome is InsertOutcome.NEW
                                    and meter is not None
                                ):
                                    meter.charge(
                                        "facts", phase="evaluate"
                                    )
                if backward_subsumption:
                    for fact in log.new_facts():
                        relation = database.get(fact.pred)
                        if relation is None or fact not in relation:
                            continue  # swept by a later sibling
                        stats.swept += len(
                            relation.sweep_subsumed_by(fact)
                        )
                delta = len(log.new_facts())
                it_span.set("delta", delta)
                it_span.set("derivations", len(log.derivations))
        except BudgetExceeded as error:
            # Stop at the checkpoint and keep the partial state:
            # everything derived so far (this iteration included)
            # is sound, only completeness is lost.
            tripped = error.resource
            logs.append(log)
            stats.iterations += 1
            break
        logs.append(log)
        stats.iterations += 1
        if not log.new_facts():
            reached_fixpoint = True
            break
    return reached_fixpoint, tripped


def resume(
    program: Program,
    database: Database,
    new_facts: "Iterable[Fact]",
    start_stamp: int,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
    use_range_index: bool = True,
    backward_subsumption: bool = False,
    budget: "governor.BudgetMeter | None" = None,
    assume_delta: bool = False,
) -> EvaluationResult:
    """Fold new EDB facts into an evaluated database and continue.

    Incremental re-evaluation for monotone programs: ``database`` is
    the (mutated-in-place) database of a *completed* :func:`evaluate`
    run of the same program, and ``new_facts`` are additional EDB
    facts.  The new facts are inserted with stamp ``start_stamp``
    (which must exceed every stamp already stored -- pass the prior
    run's ``stats.iterations + <resumes so far>``) so they form the
    semi-naive delta, and iteration continues until a new fixpoint:
    every derivation attempted uses at least one new fact, so nothing
    already computed is recomputed.  Sound and complete because CQL
    evaluation is monotone (no negation): the old fixpoint plus the
    delta closure is the fixpoint of the enlarged EDB.

    Returns an :class:`EvaluationResult` whose ``iterations``/``stats``
    cover only the resumed portion.  If the facts were all duplicates
    or subsumed, the database is already a fixpoint and no iteration
    runs.  ``max_iterations`` caps the *additional* iterations.

    ``assume_delta`` runs the iteration loop even when ``new_facts``
    added nothing: the caller asserts the database already holds an
    unprocessed delta at ``start_stamp`` (facts a previous bounded run
    derived but never joined from).  The sharded exchange loop
    (:mod:`repro.shard.exchange`) uses this with ``max_iterations=1``
    to step the semi-naive fixpoint one round at a time, folding in
    remote shards' derivations between rounds.
    """
    meter = budget if budget is not None else governor.current_meter()
    with obs_span("normalize"):
        normalized = normalize_program(program)
    evaluators = [
        RuleEvaluator(rule, use_ranges=use_range_index)
        for rule in normalized
    ]
    for rule in normalized:
        for literal in (rule.head, *rule.body):
            database.relation(literal.pred, literal.arity)
    stats = EvalStats()
    logs: list[IterationLog] = []
    tripped: str | None = None
    added = 0
    try:
        for fact in new_facts:
            outcome = database.insert(fact, stamp=start_stamp)
            obs_count(_OUTCOME_COUNTERS[outcome])
            if outcome is InsertOutcome.NEW:
                added += 1
                if meter is not None:
                    meter.charge("facts", phase="evaluate")
    except BudgetExceeded as error:
        tripped = error.resource
    reached_fixpoint = tripped is None
    if (added or assume_delta) and tripped is None:
        with obs_span(
            "fixpoint", strategy="seminaive", rules=len(normalized),
            resumed=True, delta=added,
        ) as fixpoint_span:
            reached_fixpoint, tripped = _run_fixpoint(
                database, evaluators, "seminaive",
                first_iteration=start_stamp + 1,
                last_iteration=start_stamp + max_iterations,
                meter=meter, stats=stats, logs=logs,
                backward_subsumption=backward_subsumption,
                cold_start=False,
            )
            fixpoint_span.set("iterations", stats.iterations)
            fixpoint_span.set("reached_fixpoint", reached_fixpoint)
            if tripped is not None:
                fixpoint_span.set("truncated", tripped)
    stats.probes = sum(evaluator.probes for evaluator in evaluators)
    obs_count("engine.join_probes", stats.probes)
    obs_count("engine.iterations", stats.iterations)
    obs_count("engine.resumes")
    if reached_fixpoint:
        completeness = "complete"
    else:
        completeness = f"truncated:{tripped or 'iterations'}"
    return EvaluationResult(
        database=database,
        iterations=logs,
        reached_fixpoint=reached_fixpoint,
        stats=stats,
        program=normalized,
        completeness=completeness,
    )


def seminaive_evaluate(
    program: Program,
    edb: Database | None = None,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
) -> EvaluationResult:
    """``evaluate`` with the semi-naive strategy."""
    return evaluate(program, edb, max_iterations, strategy="seminaive")


def naive_evaluate(
    program: Program,
    edb: Database | None = None,
    max_iterations: int = DEFAULT_EVAL_ITERATIONS,
) -> EvaluationResult:
    """``evaluate`` with the naive strategy."""
    return evaluate(program, edb, max_iterations, strategy="naive")
