"""Single-rule application: the basic step of bottom-up evaluation.

Section 2 describes a derivation with rule ``r`` as: choose a fact for
each body literal so that the conjunction of the facts' constraints, the
argument equalities and the rule's constraints is satisfiable, then
eliminate the non-head variables by exact quantifier elimination.

This module implements that step over a database of (possibly
constraint) facts.  Symbolic constants are handled by syntactic
unification; numeric structure goes through the constraint solver.  Two
optimizations keep the common all-ground case fast:

* equalities between already-known constants are checked directly
  instead of being accumulated as constraint atoms;
* rule constraint atoms are evaluated as soon as all their variables
  hold known constants, pruning the join early (this is the very
  "selection pushing" effect the paper studies, applied at the tuple
  level inside one rule application).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Iterator

from repro.constraints.atom import Atom, Op
from repro.constraints.conjunction import Conjunction
from repro.constraints.linexpr import LinearExpr, as_fraction
from repro.engine.database import Database
from repro.engine.facts import Fact, PENDING, make_fact
from repro.engine.relation import Range
from repro.errors import ReproError
from repro.governor import budget as governor
from repro.lang.ast import Literal, Rule
from repro.lang.positions import arg_position
from repro.lang.terms import NumTerm, Sym, Var
from repro.obs.recorder import count as obs_count


class SortConflictError(ReproError, TypeError):
    """A variable was used both symbolically and in arithmetic."""

    code = "REPRO_SORT_CONFLICT"
    exit_code = 2


@dataclass
class _State:
    """Mutable join state threaded through the body literals."""

    sym_bind: dict[str, Sym]
    num_bind: dict[str, LinearExpr]
    atoms: list[Atom]

    def copy(self) -> "_State":
        """An independent copy."""
        return _State(
            dict(self.sym_bind), dict(self.num_bind), list(self.atoms)
        )

    def constant_of(self, name: str) -> Fraction | None:
        """The constant a variable is bound to, if any."""
        expr = self.num_bind.get(name)
        if expr is not None and expr.is_constant():
            return as_fraction(expr.constant)
        return None


FactView = Callable[
    [Literal, dict[int, Sym | Fraction], int, "dict[int, Range] | None"],
    Iterable[Fact],
]
"""Produces candidate facts for a body literal: (literal, bound
positions with fixed values, body index, static range probes) -> facts."""


class RuleEvaluator:
    """Pre-analyzed applier for one normalized rule.

    ``use_ranges`` enables pushing the rule's single-variable constraint
    atoms into index range probes (Section 4.6's "effective indexing"):
    a body literal argument ``T`` constrained by ``T <= 240`` probes the
    relation's ordered index with that range instead of scanning.
    """

    def __init__(self, rule: Rule, use_ranges: bool = True) -> None:
        if not rule.is_normalized():
            raise ValueError(f"rule is not normalized: {rule}")
        self.rule = rule
        self.probes = 0
        self._ranges: list[dict[int, Range]] = [
            self._static_ranges(literal) if use_ranges else {}
            for literal in rule.body
        ]
        self._head_positions = [
            arg_position(index) for index in range(1, rule.head.arity + 1)
        ]
        # Static schedule: constraint atoms checkable after body literal i
        # (all their variables are bound by literals 0..i, assuming ground
        # bindings; non-ground cases fall through to the final conjoin).
        bound_after: list[set[str]] = []
        seen: set[str] = set()
        for literal in rule.body:
            seen |= literal.variables()
            bound_after.append(set(seen))
        pending_atoms = list(rule.constraint.atoms)
        self._checks: list[list[Atom]] = []
        for bound in bound_after:
            here = [
                atom
                for atom in pending_atoms
                if atom.variables() <= bound
            ]
            pending_atoms = [
                atom for atom in pending_atoms if atom not in here
            ]
            self._checks.append(here)
        self._deferred_atoms = pending_atoms
        # Derivation memo: the semi-naive delta split re-derives the same
        # (values, constraint) pair from different body-fact combinations
        # in a large share of derivations; the head-side canonicalization
        # (projection + forced-value freezing in ``make_fact``) is
        # identical for all of them, so reuse it.  Keys are cheap to hash
        # because atoms and conjunctions are interned.
        self._fact_memo: dict[tuple, Fact | None] = {}

    def _static_ranges(self, literal: Literal) -> dict[int, Range]:
        """Range probes derivable from single-variable constraint atoms."""
        ranges: dict[int, Range] = {}
        for position, arg in enumerate(literal.args):
            if not isinstance(arg, Var):
                continue
            lower = upper = None
            lower_strict = upper_strict = False
            for atom in self.rule.constraint.atoms:
                if atom.variables() != {arg.name}:
                    continue
                coeff = atom.expr.coeff(arg.name)
                value = as_fraction(-atom.expr.constant) / coeff
                if atom.op is Op.EQ:
                    lower = upper = value
                    lower_strict = upper_strict = False
                    break
                strict = atom.op is Op.LT
                if coeff > 0:  # upper bound
                    if upper is None or value < upper:
                        upper, upper_strict = value, strict
                else:  # lower bound
                    if lower is None or value > lower:
                        lower, lower_strict = value, strict
            if lower is not None or upper is not None:
                ranges[position] = Range(
                    lower, lower_strict, upper, upper_strict
                )
        return ranges

    # -- the join -----------------------------------------------------

    def derive(self, view: FactView) -> Iterator[Fact]:
        """All facts derivable with one application of the rule."""
        for fact, __ in self.derive_with_parents(view):
            yield fact

    def derive_with_parents(
        self, view: FactView
    ) -> Iterator[tuple[Fact, tuple[Fact, ...]]]:
        """Derivations with the body facts used (for provenance)."""
        obs_count("engine.rule_evals")
        state = _State({}, {}, [])
        counter = [0]
        yield from self._join(0, state, counter, view, ())

    def _join(
        self,
        index: int,
        state: _State,
        counter: list[int],
        view: FactView,
        parents: tuple[Fact, ...],
    ) -> Iterator[tuple[Fact, tuple[Fact, ...]]]:
        if index == len(self.rule.body):
            fact = self._finish(state)
            if fact is not None:
                yield fact, parents
            return
        literal = self.rule.body[index]
        bound = self._bound_positions(literal, state)
        ranges = self._ranges[index] or None
        for fact in view(literal, bound, index, ranges):
            self.probes += 1
            # Cooperative budget checkpoint: a single rule application
            # over a large relation can run long, so the deadline is
            # polled inside the join loop too (cheap stride check).
            governor.tick("rule")
            branch = state.copy()
            if not self._unify(literal, fact, branch, counter):
                continue
            if not self._early_checks(index, branch):
                continue
            yield from self._join(
                index + 1, branch, counter, view, (*parents, fact)
            )

    def _bound_positions(
        self, literal: Literal, state: _State
    ) -> dict[int, Sym | Fraction]:
        bound: dict[int, Sym | Fraction] = {}
        for position, arg in enumerate(literal.args):
            if isinstance(arg, Sym):
                bound[position] = arg
            elif isinstance(arg, NumTerm):
                bound[position] = arg.value
            elif isinstance(arg, Var):
                symbol = state.sym_bind.get(arg.name)
                if symbol is not None:
                    bound[position] = symbol
                    continue
                constant = state.constant_of(arg.name)
                if constant is not None:
                    bound[position] = constant
        return bound

    def _unify(
        self,
        literal: Literal,
        fact: Fact,
        state: _State,
        counter: list[int],
    ) -> bool:
        """Unify literal arguments with a fact; extend the state."""
        counter[0] += 1
        instance = counter[0]
        fact_vars = fact.constraint.variables()
        rename: dict[str, str] = {}

        def fact_expr(position: int) -> LinearExpr:
            """The renamed-apart expression for a PENDING fact position."""
            original = arg_position(position + 1)
            fresh = rename.setdefault(original, f"!{instance}_{position + 1}")
            return LinearExpr.var(fresh)

        for position, arg in enumerate(literal.args):
            value = fact.args[position]
            if isinstance(arg, Sym):
                if isinstance(value, Sym):
                    if value != arg:
                        return False
                elif value is PENDING:
                    if arg_position(position + 1) in fact_vars:
                        return False
                else:
                    return False
            elif isinstance(arg, NumTerm):
                constant = arg.value
                if isinstance(value, Fraction):
                    if value != constant:
                        return False
                elif value is PENDING:
                    state.atoms.append(
                        Atom.eq(fact_expr(position), LinearExpr.const(constant))
                    )
                else:
                    return False
            else:  # Var
                name = arg.name
                symbol = state.sym_bind.get(name)
                if symbol is not None:
                    if isinstance(value, Sym):
                        if value != symbol:
                            return False
                    elif value is PENDING:
                        if arg_position(position + 1) in fact_vars:
                            return False
                    else:
                        return False
                    continue
                known = state.num_bind.get(name)
                if known is not None:
                    if isinstance(value, Sym):
                        return False
                    if isinstance(value, Fraction):
                        if known.is_constant():
                            if known.constant != value:
                                return False
                        else:
                            state.atoms.append(
                                Atom.eq(known, LinearExpr.const(value))
                            )
                    else:
                        state.atoms.append(
                            Atom.eq(known, fact_expr(position))
                        )
                    continue
                # Unbound variable.
                if isinstance(value, Sym):
                    state.sym_bind[name] = value
                elif isinstance(value, Fraction):
                    state.num_bind[name] = LinearExpr.const(value)
                else:
                    state.num_bind[name] = fact_expr(position)
        if rename and fact.constraint.atoms:
            renamed = fact.constraint.rename(rename)
            state.atoms.extend(renamed.atoms)
        return True

    def _early_checks(self, index: int, state: _State) -> bool:
        """Evaluate rule constraints whose variables are known constants."""
        for atom in self._checks[index]:
            substituted = self._substitute_atom(atom, state)
            if substituted is None:
                return False
            truth = substituted.truth_value()
            if truth is False:
                return False
            if truth is None:
                state.atoms.append(substituted)
        return True

    def _substitute_atom(self, atom: Atom, state: _State) -> Atom | None:
        """Apply bindings to a rule-constraint atom; None on sort conflict."""
        bindings: dict[str, LinearExpr] = {}
        for name in atom.variables():
            if name in state.sym_bind:
                # A symbol flowed into an arithmetic comparison: no
                # number equals a symbol, so the derivation fails.
                return None
            expr = state.num_bind.get(name)
            if expr is not None:
                bindings[name] = expr
        if not bindings:
            return atom
        return atom.substitute(bindings)

    def _finish(self, state: _State) -> Fact | None:
        """Assemble the head fact: substitute, conjoin, project."""
        atoms = list(state.atoms)
        for atom in self._deferred_atoms:
            substituted = self._substitute_atom(atom, state)
            if substituted is None:
                return None
            truth = substituted.truth_value()
            if truth is False:
                return None
            if truth is None:
                atoms.append(substituted)
        # Cheap constant propagation through single-variable equalities
        # (e.g. ``T = T1 + T2 + 30`` with ground T1, T2) so the common
        # all-ground case never reaches the quantifier-elimination path.
        propagated = _propagate_constants(atoms)
        if propagated is None:
            return None
        solved, atoms = propagated
        if solved:
            bindings = {
                name: LinearExpr.const(value)
                for name, value in solved.items()
            }
            for name, expr in state.num_bind.items():
                if expr.variables() & solved.keys():
                    state.num_bind[name] = expr.substitute(bindings)
            for name in solved:
                state.num_bind.setdefault(
                    name, LinearExpr.const(solved[name])
                )
        values: list[object] = []
        head_atoms: list[Atom] = []
        for position, arg in enumerate(self.rule.head.args, start=1):
            if isinstance(arg, Sym):
                values.append(arg)
            elif isinstance(arg, NumTerm):
                values.append(arg.value)
            else:  # Var
                name = arg.name
                symbol = state.sym_bind.get(name)
                if symbol is not None:
                    values.append(symbol)
                    continue
                expr = state.num_bind.get(name)
                if expr is None:
                    expr = LinearExpr.var(name)
                if expr.is_constant() and not any(
                    name in atom.variables() for atom in atoms
                ):
                    values.append(expr.constant)
                    continue
                values.append(PENDING)
                head_atoms.append(
                    Atom.eq(LinearExpr.var(arg_position(position)), expr)
                )
        if not atoms and not head_atoms:
            return make_fact(self.rule.head.pred, values)
        constraint = Conjunction((*atoms, *head_atoms))
        key = (tuple(values), constraint)
        try:
            cached = self._fact_memo[key]
        except KeyError:
            pass
        else:
            obs_count("engine.derivation_memo_hits")
            return cached
        fact = make_fact(self.rule.head.pred, values, constraint)
        if len(self._fact_memo) >= 1 << 16:
            self._fact_memo.clear()
        self._fact_memo[key] = fact
        return fact


def _propagate_constants(
    atoms: list[Atom],
) -> tuple[dict[str, Fraction], list[Atom]] | None:
    """Solve single-variable equalities; ``None`` when contradictory.

    Returns the solved assignments and the residual atoms.  Only a cheap
    syntactic pass: repeatedly pick an equality ``a*X + c = 0``, bind
    ``X = -c/a``, substitute, and fold ground atoms.
    """
    solved: dict[str, Fraction] = {}
    residual = atoms
    progress = True
    while progress:
        progress = False
        next_residual: list[Atom] = []
        binding: tuple[str, Fraction] | None = None
        for position, atom in enumerate(residual):
            variables = atom.variables()
            if atom.op is Op.EQ and len(variables) == 1:
                (name,) = variables
                coeff = atom.expr.coeff(name)
                value = as_fraction(-atom.expr.constant) / coeff
                binding = (name, value)
                next_residual.extend(residual[position + 1 :])
                break
            next_residual.append(atom)
        if binding is None:
            break
        name, value = binding
        solved[name] = value
        substitution = {name: LinearExpr.const(value)}
        folded: list[Atom] = []
        for atom in next_residual:
            if name in atom.variables():
                atom = atom.substitute(substitution)
            truth = atom.truth_value()
            if truth is False:
                return None
            if truth is None:
                folded.append(atom)
        residual = folded
        progress = True
    return solved, residual


def database_view(
    database: Database,
    max_stamp: int | None = None,
    exact_stamp_index: int | None = None,
    exact_stamp: int | None = None,
    old_stamp: int | None = None,
) -> FactView:
    """A fact view over a database with semi-naive stamp filtering.

    With ``exact_stamp_index`` set, the literal at that body index sees
    only facts stamped ``exact_stamp`` (the delta), literals before it
    see facts up to ``max_stamp``, and literals after it see facts up to
    ``old_stamp`` (the pre-delta view).
    """

    def view(
        literal: Literal,
        bound: dict[int, Sym | Fraction],
        index: int,
        ranges: "dict[int, Range] | None" = None,
    ) -> Iterable[Fact]:
        """The stamped fact view for one body literal."""
        relation = database.get(literal.pred)
        if relation is None:
            return ()
        if exact_stamp_index is None:
            return relation.matching(
                bound, max_stamp=max_stamp, ranges=ranges
            )
        if index == exact_stamp_index:
            return relation.matching(
                bound, exact_stamp=exact_stamp, ranges=ranges
            )
        if index < exact_stamp_index:
            return relation.matching(
                bound, max_stamp=max_stamp, ranges=ranges
            )
        return relation.matching(
            bound, max_stamp=old_stamp, ranges=ranges
        )

    return view
