"""Derivation trees (Definition 2.2), reconstructed from provenance.

Every NEW fact's first derivation records the rule and the body facts
used; chasing those parents bottoms out at EDB facts, yielding the
derivation tree of Definition 2.2 ("constraints in rules are viewed as
conditions ... constraints are not themselves part of a tree").  The
first-derivation graph is acyclic because a derivation at iteration
``k`` only consumes facts stamped ``< k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.facts import Fact
from repro.engine.fixpoint import EvaluationResult
from repro.engine.relation import InsertOutcome


@dataclass(frozen=True)
class DerivationTree:
    """A derivation tree rooted at ``fact`` (Definition 2.2).

    ``rule_label`` is ``None`` for leaves (EDB facts).
    """

    fact: Fact
    rule_label: str | None
    children: tuple["DerivationTree", ...] = ()

    @property
    def is_leaf(self) -> bool:
        """Is this an EDB (underived) fact?"""
        return self.rule_label is None

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def facts(self) -> set[Fact]:
        """The stored facts of a predicate."""
        collected = {self.fact}
        for child in self.children:
            collected |= child.facts()
        return collected

    def render(self, indent: str = "") -> str:
        """Indented textual rendering of the tree."""
        label = f" [{self.rule_label}]" if self.rule_label else ""
        lines = [f"{indent}{self.fact}{label}"]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def first_derivations(
    result: EvaluationResult,
) -> dict[Fact, tuple[str | None, tuple[Fact, ...]]]:
    """The earliest (rule, parents) recorded for every derived fact."""
    recorded: dict[Fact, tuple[str | None, tuple[Fact, ...]]] = {}
    for log in result.iterations:
        for derivation in log.derivations:
            if derivation.outcome is InsertOutcome.NEW:
                recorded.setdefault(
                    derivation.fact,
                    (derivation.rule_label, derivation.parents),
                )
    return recorded


def derivation_tree(
    result: EvaluationResult, fact: Fact
) -> DerivationTree | None:
    """The first derivation tree of a fact stored by the evaluation.

    Returns ``None`` when the fact is not in the result's database.
    EDB facts yield single-node trees.
    """
    if fact not in result.database:
        return None
    recorded = first_derivations(result)

    def build(node: Fact) -> DerivationTree:
        """Recursively build the subtree of a fact."""
        entry = recorded.get(node)
        if entry is None:
            return DerivationTree(node, None)
        rule_label, parents = entry
        return DerivationTree(
            node, rule_label, tuple(build(parent) for parent in parents)
        )

    return build(fact)


def explain(result: EvaluationResult, fact: Fact) -> str:
    """A human-readable derivation of a fact, or why there is none."""
    tree = derivation_tree(result, fact)
    if tree is None:
        return f"{fact} was not derived"
    return tree.render()
