"""Databases: named collections of relations (Section 2).

A :class:`Database` maps predicate names to :class:`~repro.engine.relation.Relation`
stores.  It is used both for the input EDB and for the engine's working
set during fixpoint evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.constraints.conjunction import Conjunction
from repro.engine.facts import Fact, make_fact
from repro.engine.relation import InsertOutcome, Relation


class Database:
    """A mutable collection of relations keyed by predicate name."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_ground(
        tuples: Mapping[str, Iterable[tuple]],
    ) -> "Database":
        """Build a database of ground facts from plain Python tuples."""
        database = Database()
        for pred, rows in tuples.items():
            for row in rows:
                database.add_ground(pred, row)
        return database

    def copy(self) -> "Database":
        """An independent copy."""
        clone = Database()
        for relation in self._relations.values():
            for fact in relation:
                clone.insert(fact, stamp=relation.stamp(fact))
        return clone

    # -- modification ------------------------------------------------------

    def relation(self, pred: str, arity: int) -> Relation:
        """The (created-on-demand) relation for a predicate."""
        relation = self._relations.get(pred)
        if relation is None:
            relation = Relation(pred, arity)
            self._relations[pred] = relation
        elif relation.arity != arity:
            raise ValueError(
                f"relation {pred} has arity {relation.arity}, not {arity}"
            )
        return relation

    def insert(self, fact: Fact, stamp: int = 0) -> InsertOutcome:
        """Insert a fact; returns the insertion outcome."""
        return self.relation(fact.pred, fact.arity).insert(fact, stamp)

    def insert_many(
        self, facts: Iterable[Fact], stamp: int = 0
    ) -> list[Fact]:
        """Insert facts; returns those that were actually new."""
        added = []
        for fact in facts:
            if self.insert(fact, stamp) is InsertOutcome.NEW:
                added.append(fact)
        return added

    def add_ground(self, pred: str, values: Iterable[object]) -> None:
        """Insert a ground fact built from plain Python values."""
        self.insert(Fact.ground(pred, values))

    def add_constraint_fact(
        self,
        pred: str,
        values: Iterable[object],
        constraint: Conjunction = Conjunction.true(),
    ) -> None:
        """Add a (possibly) constraint fact; ``None`` values are pending."""
        fact = make_fact(pred, list(values), constraint)
        if fact is not None:
            self.insert(fact)

    # -- inspection ---------------------------------------------------------

    def get(self, pred: str) -> Relation | None:
        """The relation for a predicate, or None."""
        return self._relations.get(pred)

    def predicates(self) -> frozenset[str]:
        """The predicate names present."""
        return frozenset(self._relations)

    def facts(self, pred: str) -> tuple[Fact, ...]:
        """The stored facts of a predicate."""
        relation = self._relations.get(pred)
        return relation.facts if relation is not None else ()

    def all_facts(self) -> Iterator[Fact]:
        """Iterate over every stored fact."""
        for relation in self._relations.values():
            yield from relation

    def count(self, pred: str | None = None) -> int:
        """Number of stored facts (of one predicate, or all)."""
        if pred is not None:
            relation = self._relations.get(pred)
            return len(relation) if relation is not None else 0
        return sum(len(relation) for relation in self._relations.values())

    def __contains__(self, fact: Fact) -> bool:
        relation = self._relations.get(fact.pred)
        return relation is not None and fact in relation

    def __str__(self) -> str:
        lines = []
        for pred in sorted(self._relations):
            lines.append(f"{pred}: {self._relations[pred]}")
        return "\n".join(lines)
