"""Legacy setup shim so ``pip install -e .`` works without the ``wheel``
package (PEP 660 editable builds require it; ``setup.py develop`` does not).
"""

from setuptools import setup

setup()
