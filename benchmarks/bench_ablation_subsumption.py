"""Ablation: backward subsumption (store minimization).

Forward subsumption (discard new facts covered by stored ones) is the
paper's baseline behaviour. Backward subsumption additionally sweeps
stored facts when a later, more general constraint fact covers them.
The workload derives many point facts before a generalization arrives;
the sweep collapses the store without changing any answer.
"""

import pytest

from repro.engine import Database, evaluate
from repro.lang.parser import parse_program

from benchmarks.conftest import record_rows


def build_program():
    return parse_program(
        """
        p(X) :- e(X).
        go(Y) :- e(Y), Y = 1.
        p(X) :- go(Y), X >= 0.
        keep(X) :- p(X), X <= 100.
        """
    )


@pytest.mark.parametrize("points", [20, 80, 320])
def test_sweep_collapses_point_store(benchmark, points):
    program = build_program()
    edb = Database.from_ground(
        {"e": [(value,) for value in range(1, points + 1)]}
    )

    def run():
        plain = evaluate(program, edb)
        swept = evaluate(program, edb, backward_subsumption=True)
        return plain, swept

    plain, swept = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "points": points,
                "p_facts_plain": plain.count("p"),
                "p_facts_swept": swept.count("p"),
                "swept": swept.stats.swept,
            }
        ],
    )
    # All point facts collapse into the single generalization; the
    # downstream keep-points (capped at 100 by keep's constraint)
    # collapse likewise.
    assert swept.count("p") == 1
    assert plain.count("p") == points + 1
    assert swept.stats.swept == points + min(points, 100)


def test_sweep_preserves_downstream_answers(benchmark):
    program = build_program()
    edb = Database.from_ground(
        {"e": [(value,) for value in range(1, 40)]}
    )

    def run():
        plain = evaluate(program, edb)
        swept = evaluate(program, edb, backward_subsumption=True)
        return plain, swept

    plain, swept = benchmark(run)

    def keep_instances(result):
        instances = set()
        for fact in result.facts("keep"):
            if fact.is_ground():
                instances.add(fact.args[0])
        return instances

    # Ground keep-instances agree; the swept run may additionally
    # represent them inside one constraint fact.
    from repro.constraints.linexpr import LinearExpr

    swept_keep = swept.facts("keep")
    for value in keep_instances(plain):
        assert any(
            fact.subsumes(type(fact)("keep", (value,), fact.constraint))
            or (fact.is_ground() and fact.args[0] == value)
            or (
                not fact.is_ground()
                and fact.constraint.satisfied_by({"$1": value})
            )
            for fact in swept_keep
        )
