"""Chaos-recovery harness: kill a serving process, damage its durable
state, restart it, and verify the recovery contract.

Each cycle runs ``repro serve`` as a real subprocess with a snapshot
directory, feeds it fact loads over stdin, and SIGKILLs it at a
randomized point -- optionally widened into a mid-append window with an
injected ``delay:fs.write.wal`` fault, so the kill lands between the
WAL write and the ack.  The cycle then optionally damages the durable
files the way real disks do (a bit flip at a random offset, a
truncation), restarts against the same directory, and checks:

* **no ghosts** -- every fact the restarted server holds was actually
  fed to the victim (at-most-once-ack allows an unacked in-flight fact
  to survive, never an invented one);
* **no silent acked-fact loss** -- a kill-only cycle must preserve
  every acknowledged fact; a corrupted cycle may lose acked facts only
  through the *reported* paths (``REPRO_CORRUPT`` + quarantine, or a
  torn tail whose drop count bounds the loss);
* **no silent replay of damage** -- whenever recovery reports
  ``REPRO_CORRUPT``, the damaged file must actually sit in the
  ``corrupt/`` sidecar, and corruption is never reported for a cycle
  that injected none;
* **oracle-exact answers** -- the restarted server's answers equal the
  conformance oracle's answers over exactly the surviving EDB.

The harness predicts what recovery *should* do by re-parsing the
damaged files with the snapshot module's own record parser -- the
prediction pins down whether damage is a tolerable torn tail or
reportable corruption, and the subprocess run proves the end-to-end
plumbing (quarantine, fallback, report, replay) honors it.

With ``--sharded N`` each cycle instead runs ``repro serve --shards
N`` with tight op deadlines and heartbeats, disrupts one *shard
worker* mid-load -- SIGKILL, SIGSTOP, or an injected ``hang:load``
fault, so crashes, silent wedges, and in-op hangs are all exercised
-- and requires a liveness query at the batch tail to come back as
answers (detection, SIGKILL + respawn, WAL re-recovery, and the
supervisor's transient retry all on its path).  The cycle then kills
or drains the whole process and verifies that restart converges
every shard to a consistent cluster epoch with zero acked-fact loss.

Usage::

    python benchmarks/chaos_recover.py --cycles 50 [--seed N]
        [--artifacts DIR] [--sharded N]

Exits non-zero on any violation; failing cycles leave their snapshot
directory (and the quarantined evidence inside it) under the artifacts
directory, named after the cycle and the seed that reproduces it.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.conformance.oracle import oracle_answer_strings  # noqa: E402
from repro.lang.parser import parse_program, parse_query  # noqa: E402
from repro.serve.snapshot import (  # noqa: E402
    LOG_NAME,
    SCHEMA,
    _canonical,
    _crc,
    _parse_log_line,
)

PROGRAM = """
reach(X, Y) :- edge(X, Y, C).
reach(X, Z) :- reach(X, Y), edge(Y, Z, C).
edge(n0, n1, 0).
"""

#: The edge baked into the program text (always present).
BASE_EDGE = ("n0", "n1", "0")
#: Facts the victim is fed, one load (= one WAL record) each.
LOADABLE = [(f"n{i}", f"n{i + 1}", str(i)) for i in range(1, 10)]

EDGE_QUERY = "?- edge(X, Y, C)."
REACH_QUERY = "?- reach(n0, X)."

#: Damage modes a cycle draws from ("none" twice: half the cycles are
#: pure kill/recover, the acceptance path for zero acked-fact loss).
MODES = ("none", "none", "flip_wal", "truncate_wal", "flip_snapshot")

#: Snapshot files start ``{"schema": "repro-snap/v2", "crc": ...`` --
#: a flip inside that header makes an unknown-format file, which is a
#: declared hard error (docs/serving.md), not silent damage.  The
#: harness targets the checksummed body past it.
SNAPSHOT_HEADER_BYTES = 48


def fact_line(edge: tuple[str, str, str]) -> str:
    return f"edge({edge[0]}, {edge[1]}, {edge[2]})."


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


def _serve_argv(program_path: str, *flags: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve", program_path, *flags
    ]


# -- answer canonicalization ------------------------------------------


def canonical_answer(binding: str) -> str:
    """A serve answer string in the oracle's canonical spelling.

    ``repro serve`` renders ``"C = 1, X = n1"`` (query variables in
    sorted name order); the oracle renders the same answer as
    ``"#1|n1"``.  Constraint answers (``constrained`` positions) never
    appear in this workload, so any unparseable binding is itself a
    wrong answer.
    """
    parts = []
    for piece in binding.split(", "):
        name, sep, value = piece.partition(" = ")
        if not sep:
            raise ValueError(f"unparseable answer binding {binding!r}")
        try:
            parts.append(f"#{Fraction(value)}")
        except ValueError:
            parts.append(value)
    return "|".join(parts)


def edges_from_answers(bindings: list[str]) -> set[tuple]:
    """Surviving ``edge(X, Y, C)`` tuples from the edge query answers."""
    edges = set()
    for binding in bindings:
        values = {}
        for piece in binding.split(", "):
            name, __, value = piece.partition(" = ")
            values[name] = value
        edges.add((values["X"], values["Y"], values["C"]))
    return edges


def oracle_edge_and_reach(edges: set[tuple]) -> tuple[set, set]:
    """The conformance oracle's answers over exactly ``edges``."""
    text = PROGRAM + "".join(
        fact_line(edge) + "\n"
        for edge in sorted(edges)
        if edge != BASE_EDGE
    )
    program = parse_program(text)
    return (
        set(oracle_answer_strings(program, parse_query(EDGE_QUERY))),
        set(oracle_answer_strings(program, parse_query(REACH_QUERY))),
    )


# -- damage injection and prediction ----------------------------------


def flip_byte(path: Path, rng: random.Random, lo: int = 0) -> bool:
    """Flip one random byte of ``path`` (past ``lo``) to a new value."""
    data = bytearray(path.read_bytes())
    if len(data) <= lo:
        return False
    index = rng.randrange(lo, len(data))
    new = rng.randrange(256)
    while new == data[index]:
        new = rng.randrange(256)
    data[index] = new
    path.write_bytes(bytes(data))
    return True


def truncate(path: Path, rng: random.Random) -> bool:
    data = path.read_bytes()
    if len(data) < 2:
        return False
    path.write_bytes(data[: rng.randrange(1, len(data))])
    return True


def predict_wal_damage(path: Path) -> dict:
    """What recovery should find in the (possibly damaged) WAL.

    Re-runs the snapshot module's own record parser over the file:
    ``{"damaged": bool, "torn_tail": bool, "dropped": N}`` with the
    same valid-prefix semantics recovery applies.
    """
    if not path.exists():
        return {"damaged": False, "torn_tail": False, "dropped": 0}
    lines = [
        line
        for line in path.read_bytes()
        .decode("utf-8", errors="replace")
        .splitlines()
        if line.strip()
    ]
    for index, line in enumerate(lines):
        try:
            _parse_log_line(line)
        except ValueError:
            return {
                "damaged": True,
                "torn_tail": index == len(lines) - 1,
                "dropped": len(lines) - index,
            }
    return {"damaged": False, "torn_tail": False, "dropped": 0}


def snapshot_is_damaged(path: Path) -> bool:
    """Whether recovery should quarantine this snapshot file."""
    try:
        payload = json.loads(path.read_bytes().decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return True
    if not isinstance(payload, dict):
        return True
    if payload.get("schema") != SCHEMA:
        return True  # header damage: recovery hard-errors, see MODES
    body = {
        key: value
        for key, value in payload.items()
        if key not in ("schema", "crc")
    }
    return payload.get("crc") != _crc(_canonical(body))


def newest_snapshot(snapdir: Path) -> Path | None:
    candidates = sorted(
        name
        for name in os.listdir(snapdir)
        if name.startswith("snapshot-") and name.endswith(".json")
    )
    return snapdir / candidates[-1] if candidates else None


# -- one chaos cycle --------------------------------------------------


def run_cycle(
    rng: random.Random,
    workdir: Path,
    mode: str | None = None,
    snapshot_every: int | None = None,
    kill_after: int | None = None,
) -> dict:
    """One kill/damage/recover cycle; returns a report with violations.

    ``mode``/``snapshot_every``/``kill_after`` override the random
    draws (for targeted tests); the default draws everything from
    ``rng`` so a (seed, cycle) pair replays the exact cycle.
    """
    mode = mode or rng.choice(MODES)
    snapshot_every = snapshot_every or rng.choice((1, 2, 3, 8))
    kill_after = (
        kill_after
        if kill_after is not None
        else rng.randint(0, len(LOADABLE))
    )
    delay = rng.choice((None, 0.02, 0.05))

    program_path = workdir / "prog.cql"
    program_path.write_text(PROGRAM)
    snapdir = workdir / "snap"
    report: dict = {
        "mode": mode,
        "snapshot_every": snapshot_every,
        "kill_after": kill_after,
        "wal_delay": delay,
        "violations": [],
    }

    def violation(text: str) -> None:
        report["violations"].append(text)

    # -- phase 1: serve, feed, SIGKILL --------------------------------
    # --queue-depth 1 forces the driver to flush each response before
    # reading the next request line: every ack is on our pipe the
    # moment it happens, so the acked set is exact at kill time.
    flags = [
        "--batch", "-",
        "--snapshot-dir", str(snapdir),
        "--snapshot-every", str(snapshot_every),
        "--workers", "2",
        "--queue-depth", "1",
    ]
    if delay is not None:
        flags += ["--faults", f"delay:fs.write.wal:{delay}"]
    victim = subprocess.Popen(
        _serve_argv(str(program_path), *flags),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env(),
    )
    out_lines: list[str] = []

    def read_stdout() -> None:
        for line in victim.stdout:
            out_lines.append(line)

    reader = threading.Thread(target=read_stdout, daemon=True)
    reader.start()
    try:
        try:
            for edge in LOADABLE:
                victim.stdin.write(fact_line(edge) + "\n")
                victim.stdin.flush()
        except BrokenPipeError:
            violation("victim died before the batch was fed")
        deadline = time.monotonic() + 45
        while (
            len(out_lines) < kill_after
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        # A short extra beat so the kill can land *inside* the next
        # append (the injected WAL delay holds that window open).
        time.sleep(rng.uniform(0, 0.06))
    finally:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    reader.join(timeout=10)
    victim.stderr.read()

    acked: set[tuple] = set()
    for index, line in enumerate(out_lines):
        try:
            payload = json.loads(line)
        except ValueError:
            continue  # a response line torn by the kill: never acked
        if payload.get("type") == "facts":
            acked.add(LOADABLE[index])
    report["acked"] = len(acked)

    # -- phase 2: damage the durable files ----------------------------
    log_path = snapdir / LOG_NAME
    corrupted = False
    loss_bound: int | None = 0  # None = any loss is contract-legal
    expect_report = False
    if mode == "flip_wal" and log_path.exists():
        corrupted = flip_byte(log_path, rng)
    elif mode == "truncate_wal" and log_path.exists():
        corrupted = truncate(log_path, rng)
    elif mode == "flip_snapshot":
        target = newest_snapshot(snapdir) if snapdir.is_dir() else None
        if target is not None:
            corrupted = flip_byte(
                target, rng, lo=SNAPSHOT_HEADER_BYTES
            )
            if corrupted:
                expect_report = snapshot_is_damaged(target)
                loss_bound = None if expect_report else 0
    if mode in ("flip_wal", "truncate_wal") and corrupted:
        prediction = predict_wal_damage(log_path)
        report["wal_prediction"] = prediction
        if mode == "truncate_wal":
            # Records past the cut are gone from the file itself --
            # no recovery policy can restore them, and a cut on a
            # record boundary is indistinguishable from a log that
            # never grew.  Silent loss past the cut is the documented
            # limit of torn-tail detection.
            loss_bound = None
        elif prediction["torn_tail"]:
            # Indistinguishable from a crash mid-append: dropped
            # records bound the silent loss, nothing is reported.
            loss_bound = prediction["dropped"]
        elif prediction["damaged"]:
            expect_report = True
            loss_bound = None  # valid-prefix fallback: loss is legal
    report["corrupted"] = corrupted
    report["expect_report"] = expect_report

    # -- phase 3: restart, recover, query -----------------------------
    batch_path = workdir / "checks.txt"
    batch_path.write_text(EDGE_QUERY + "\n" + REACH_QUERY + "\n")
    revived = subprocess.run(
        _serve_argv(
            str(program_path),
            "--batch", str(batch_path),
            "--snapshot-dir", str(snapdir),
            "--workers", "2",
        ),
        capture_output=True, text=True, timeout=120, env=_env(),
    )
    report["restart_returncode"] = revived.returncode
    reported_corrupt = "REPRO_CORRUPT" in revived.stderr
    report["reported_corrupt"] = reported_corrupt
    if revived.returncode != 0:
        violation(
            f"restart exited {revived.returncode}: "
            f"{revived.stderr.strip()}"
        )
        return report

    answer_sets = [
        payload["answers"]
        for payload in map(json.loads, revived.stdout.splitlines())
        if payload["type"] == "answers"
    ]
    if len(answer_sets) != 2:
        violation(
            f"expected 2 answer sets, got {len(answer_sets)}"
        )
        return report
    survived = edges_from_answers(answer_sets[0])
    report["survived"] = len(survived)

    # -- phase 4: the recovery contract -------------------------------
    fed = set(LOADABLE) | {BASE_EDGE}
    ghosts = survived - fed
    if ghosts:
        violation(f"ghost facts never fed: {sorted(ghosts)}")
    lost = (acked | {BASE_EDGE}) - survived
    report["acked_lost"] = len(lost)
    if loss_bound is not None and len(lost) > loss_bound:
        violation(
            f"{len(lost)} acked facts lost (allowed "
            f"{loss_bound}, mode {mode}, "
            f"reported_corrupt={reported_corrupt}): {sorted(lost)}"
        )
    if reported_corrupt and not corrupted:
        violation("corruption reported for an undamaged cycle")
    if expect_report and not reported_corrupt:
        violation(
            "damage should have been reported as REPRO_CORRUPT "
            "but recovery stayed silent"
        )
    if reported_corrupt:
        sidecar = snapdir / "corrupt"
        if not (sidecar.is_dir() and os.listdir(sidecar)):
            violation(
                "REPRO_CORRUPT reported but corrupt/ sidecar is "
                "empty: damaged file not quarantined"
            )
    oracle_edges, oracle_reach = oracle_edge_and_reach(survived)
    served_edges = {
        canonical_answer(binding) for binding in answer_sets[0]
    }
    served_reach = {
        canonical_answer(binding) for binding in answer_sets[1]
    }
    if served_edges != oracle_edges:
        violation(
            f"edge answers diverge from the oracle: "
            f"served {sorted(served_edges)} vs "
            f"oracle {sorted(oracle_edges)}"
        )
    if served_reach != oracle_reach:
        violation(
            f"reach answers diverge from the oracle: "
            f"served {sorted(served_reach)} vs "
            f"oracle {sorted(oracle_reach)}"
        )
    return report


# -- one sharded chaos cycle ------------------------------------------


#: How a sharded cycle disrupts its victim worker ("kill" twice: the
#: crash path stays the majority).  ``kill`` SIGKILLs it (the reader
#: thread sees EOF at once), ``stop`` SIGSTOPs it (alive but silent:
#: only the heartbeat/op deadline can tell), ``hangfault`` starts the
#: cluster with ``hang:load`` so a worker wedges *inside* an op while
#: its pump thread keeps answering pings.
DISRUPTIONS = ("kill", "kill", "stop", "hangfault")


def run_sharded_cycle(
    rng: random.Random,
    workdir: Path,
    shards: int = 2,
    kill_after: int | None = None,
    disrupt: str | None = None,
) -> dict:
    """One sharded disrupt/recover cycle against ``--shards N``.

    Disrupts one shard *worker* mid-load -- SIGKILL, SIGSTOP, or an
    injected ``hang:load`` fault (:data:`DISRUPTIONS`) -- so the
    coordinator must detect the failure within its op deadline or
    heartbeat interval, SIGKILL + respawn the worker, and WAL-recover
    its acked facts.  A liveness query rides at the end of the batch:
    it must come back as answers (the supervisor retries the transient
    ``REPRO_SHARD`` it may hit first), proving the cluster converged
    with the disruption still in play.  The cycle then either closes
    the server gracefully (a stuck worker must not stall the shutdown
    ladder) or SIGKILLs the whole process, and restarts against the
    same snapshot directory.  The contract: recovery converges every
    shard to a consistent epoch (no ``inconsistent cluster recovery``
    report), no ghosts appear, no acked fact is lost (every shard's
    WAL append precedes its ack; a load that failed fast on a hung
    shard was never acked), and the restarted answers equal the
    oracle's over exactly the surviving EDB.
    """
    kill_after = (
        kill_after
        if kill_after is not None
        else rng.randint(1, len(LOADABLE) - 2)
    )
    disrupt = disrupt or rng.choice(DISRUPTIONS)
    snapshot_every = rng.choice((1, 2, 3, 8))
    delay = rng.choice((None, 0.02, 0.05))
    crash_exit = rng.random() < 0.5
    mode = f"sharded-{disrupt}"

    program_path = workdir / "prog.cql"
    program_path.write_text(PROGRAM)
    snapdir = workdir / "snap"
    report: dict = {
        "mode": mode,
        "exit": "crash" if crash_exit else "drain",
        "shards": shards,
        "snapshot_every": snapshot_every,
        "kill_after": kill_after,
        "wal_delay": delay,
        "violations": [],
    }

    def violation(text: str) -> None:
        report["violations"].append(text)

    faults = []
    if delay is not None:
        faults.append(f"delay:fs.write.wal:{delay}")
    if disrupt == "hangfault":
        # Each worker's 4th load wedges its main loop forever (the
        # pump thread still answers pings); only the coordinator's op
        # deadline can notice, SIGKILL, and respawn it.
        faults.append("hang:load:4:1")
    flags = [
        "--batch", "-",
        "--shards", str(shards),
        "--snapshot-dir", str(snapdir),
        "--snapshot-every", str(snapshot_every),
        "--workers", "2",
        "--queue-depth", "1",
        "--shard-op-timeout", "2",
        "--heartbeat-interval", "0.5",
    ]
    if faults:
        flags += ["--faults", ";".join(faults)]
    victim = subprocess.Popen(
        _serve_argv(str(program_path), *flags),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env(),
    )
    out_lines: list[str] = []
    err_lines: list[str] = []

    def read_pipe(pipe, sink) -> None:
        for line in pipe:
            sink.append(line)

    readers = [
        threading.Thread(
            target=read_pipe, args=(victim.stdout, out_lines),
            daemon=True,
        ),
        threading.Thread(
            target=read_pipe, args=(victim.stderr, err_lines),
            daemon=True,
        ),
    ]
    for reader in readers:
        reader.start()

    def shard_pids() -> dict[int, int]:
        pids = {}
        for line in err_lines:
            if line.startswith("repro serve: shard "):
                parts = line.split()
                pids[int(parts[3])] = int(parts[5])
        return pids

    try:
        deadline = time.monotonic() + 45
        while (
            len(shard_pids()) < shards
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        if len(shard_pids()) < shards:
            violation(
                f"only {len(shard_pids())} of {shards} shard pid "
                "lines appeared on stderr"
            )
        try:
            for edge in LOADABLE[:kill_after]:
                victim.stdin.write(fact_line(edge) + "\n")
                victim.stdin.flush()
            while (
                len(out_lines) < kill_after
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            # Mid-load disruption: one shard dies (SIGKILL), wedges
            # silently (SIGSTOP), or is already armed to hang inside
            # a later load (the injected fault needs no signal).
            pids = shard_pids()
            if pids and disrupt in ("kill", "stop"):
                target = rng.choice(sorted(pids))
                report["disrupted_shard"] = target
                sig = (
                    signal.SIGKILL if disrupt == "kill"
                    else signal.SIGSTOP
                )
                try:
                    os.kill(pids[target], sig)
                except ProcessLookupError:
                    pass
            for edge in LOADABLE[kill_after:]:
                victim.stdin.write(fact_line(edge) + "\n")
                victim.stdin.flush()
            # Liveness probe: with the disruption in play, a query at
            # the tail of the batch must still come back as answers
            # (hang detection + respawn + the supervisor's transient
            # retry are all on its path).
            victim.stdin.write(REACH_QUERY + "\n")
            victim.stdin.flush()
            if not crash_exit:
                victim.stdin.close()  # EOF: drain + final checkpoint
                victim.wait(timeout=90)
            else:
                deadline = time.monotonic() + 60
                while (
                    len(out_lines) < len(LOADABLE) + 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
        except BrokenPipeError:
            violation("victim died before the batch was fed")
    finally:
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        # Orphaned shard workers die on stdin EOF when the
        # coordinator's pipes close with it.
    for reader in readers:
        reader.join(timeout=10)

    acked: set[tuple] = set()
    lively = False
    for index, line in enumerate(out_lines):
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if payload.get("type") == "facts":
            acked.add(LOADABLE[index])
        elif payload.get("type") == "answers":
            lively = True
    report["acked"] = len(acked)
    report["lively"] = lively
    report["load_errors"] = sum(
        1
        for line in out_lines
        if '"type": "error"' in line or '"error_code"' in line
    )
    if not lively:
        violation(
            "liveness query was never answered: the disrupted "
            "cluster did not converge within the deadline"
        )

    # -- restart, recover, query --------------------------------------
    batch_path = workdir / "checks.txt"
    batch_path.write_text(EDGE_QUERY + "\n" + REACH_QUERY + "\n")
    revived = subprocess.run(
        _serve_argv(
            str(program_path),
            "--batch", str(batch_path),
            "--shards", str(shards),
            "--snapshot-dir", str(snapdir),
            "--workers", "2",
        ),
        capture_output=True, text=True, timeout=120, env=_env(),
    )
    report["restart_returncode"] = revived.returncode
    if revived.returncode != 0:
        violation(
            f"restart exited {revived.returncode}: "
            f"{revived.stderr.strip()}"
        )
        return report
    if "inconsistent cluster recovery" in revived.stderr:
        violation(
            "restart reported an inconsistent cluster: "
            f"{revived.stderr.strip()}"
        )
    if "REPRO_CORRUPT" in revived.stderr:
        violation(
            "corruption reported for an undamaged sharded cycle: "
            f"{revived.stderr.strip()}"
        )
    if acked and "recovered cluster epoch" not in revived.stderr:
        violation(
            "restart never reported a recovered cluster epoch "
            "despite acked loads"
        )

    answer_sets = [
        payload["answers"]
        for payload in map(json.loads, revived.stdout.splitlines())
        if payload["type"] == "answers"
    ]
    if len(answer_sets) != 2:
        violation(f"expected 2 answer sets, got {len(answer_sets)}")
        return report
    survived = edges_from_answers(answer_sets[0])
    report["survived"] = len(survived)

    fed = set(LOADABLE) | {BASE_EDGE}
    ghosts = survived - fed
    if ghosts:
        violation(f"ghost facts never fed: {sorted(ghosts)}")
    lost = (acked | {BASE_EDGE}) - survived
    report["acked_lost"] = len(lost)
    if lost:
        # Kill-only cycles: every ack follows the owning shard's WAL
        # append, so the per-shard loss bound is zero.
        violation(
            f"{len(lost)} acked facts lost in mode {mode}: "
            f"{sorted(lost)}"
        )
    oracle_edges, oracle_reach = oracle_edge_and_reach(survived)
    served_edges = {
        canonical_answer(binding) for binding in answer_sets[0]
    }
    served_reach = {
        canonical_answer(binding) for binding in answer_sets[1]
    }
    if served_edges != oracle_edges:
        violation(
            f"edge answers diverge from the oracle: "
            f"served {sorted(served_edges)} vs "
            f"oracle {sorted(oracle_edges)}"
        )
    if served_reach != oracle_reach:
        violation(
            f"reach answers diverge from the oracle: "
            f"served {sorted(served_reach)} vs "
            f"oracle {sorted(oracle_reach)}"
        )
    return report


# -- the driver -------------------------------------------------------


def run_cycles(
    cycles: int,
    seed: int,
    artifacts: Path | None = None,
    sharded: int | None = None,
) -> dict:
    """Run ``cycles`` randomized cycles; returns the summary dict."""
    summary: dict = {
        "seed": seed,
        "cycles": cycles,
        "sharded": sharded,
        "failures": [],
        "modes": {},
        "reported_corrupt": 0,
        "acked_total": 0,
    }
    base = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        for index in range(cycles):
            rng = random.Random(f"{seed}:{index}")
            workdir = base / f"cycle-{index:03d}"
            workdir.mkdir()
            if sharded is not None:
                report = run_sharded_cycle(
                    rng, workdir, shards=sharded
                )
            else:
                report = run_cycle(rng, workdir)
            report["cycle"] = index
            mode = report["mode"]
            summary["modes"][mode] = summary["modes"].get(mode, 0) + 1
            summary["reported_corrupt"] += report.get(
                "reported_corrupt", 0
            )
            summary["acked_total"] += report["acked"]
            if report["violations"]:
                summary["failures"].append(report)
                print(
                    f"cycle {index}: FAIL "
                    f"(replay: --seed {seed}, cycle {index}) "
                    + "; ".join(report["violations"]),
                    file=sys.stderr,
                )
                if artifacts is not None:
                    keep = artifacts / f"cycle-{index:03d}-seed-{seed}"
                    shutil.copytree(
                        workdir, keep, dirs_exist_ok=True
                    )
            else:
                print(
                    f"cycle {index}: ok mode={mode} "
                    f"acked={report['acked']} "
                    f"survived={report.get('survived')} "
                    f"corrupt_reported="
                    f"{report.get('reported_corrupt', 0)}"
                )
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument(
        "--cycles", type=int, default=50, metavar="N",
        help="kill/damage/recover cycles to run (default 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="RNG seed (default: drawn from os.urandom, printed)",
    )
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep failing cycles' snapshot dirs under DIR",
    )
    parser.add_argument(
        "--sharded", type=int, default=None, metavar="N",
        help="run sharded cycles against --shards N (SIGKILL one "
        "shard worker mid-load) instead of single-session cycles",
    )
    arguments = parser.parse_args(argv)
    seed = (
        arguments.seed
        if arguments.seed is not None
        else int.from_bytes(os.urandom(4), "big")
    )
    artifacts = (
        Path(arguments.artifacts) if arguments.artifacts else None
    )
    if artifacts is not None:
        artifacts.mkdir(parents=True, exist_ok=True)
    flavor = (
        f" (sharded x{arguments.sharded})"
        if arguments.sharded is not None
        else ""
    )
    print(
        f"chaos_recover: {arguments.cycles} cycles, seed {seed}"
        f"{flavor}"
    )
    summary = run_cycles(
        arguments.cycles, seed, artifacts, sharded=arguments.sharded
    )
    print(json.dumps(summary, default=str))
    if summary["failures"]:
        print(
            f"chaos_recover: {len(summary['failures'])} of "
            f"{arguments.cycles} cycles violated the recovery "
            f"contract (seed {seed})",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos_recover: all {arguments.cycles} cycles honored the "
        f"recovery contract ({summary['acked_total']} acked loads, "
        f"{summary['reported_corrupt']} corruptions reported and "
        f"quarantined)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
