"""Section 5 / Example 5.1: termination inside the decidable class.

The generation procedures must converge on class programs, far inside
the combinatorial bound ``n * 2^(2k^2+4k)`` (Theorem 5.1): Example 5.1
converges in two working iterations against a bound of 3 * 2^16.
"""

from repro.core.predconstraints import gen_predicate_constraints
from repro.core.qrp import gen_qrp_constraints
from repro.core.termination import (
    in_terminating_class,
    iteration_bound,
)
from repro.lang.parser import parse_program

from benchmarks.conftest import record_rows


def test_example51_qrp_convergence(benchmark, example_51_program):
    constraints, report = benchmark(
        lambda: gen_qrp_constraints(example_51_program, "q")
    )
    bound = iteration_bound(example_51_program)
    record_rows(
        benchmark,
        [
            {
                "iterations": report.iterations,
                "theoretical_bound": bound,
            }
        ],
    )
    assert in_terminating_class(example_51_program)
    assert report.converged
    assert report.iterations <= 3
    assert bound == 3 * 2**16


def test_example51_pred_convergence(benchmark, example_51_program):
    constraints, report = benchmark(
        lambda: gen_predicate_constraints(example_51_program)
    )
    assert report.converged
    assert str(constraints["a"]) == "(-$1 + $2 <= 0)"


def test_class_scaling_with_predicates(benchmark):
    """Convergence time as the class program grows: a chain of n
    selection layers stays linear in n, not near the 2^(2k^2+4k) bound."""

    def build(n):
        lines = ["q(X, Y) :- a0(X, Y), X <= 4."]
        for i in range(n):
            lines.append(f"a{i}(X, Y) :- a{i + 1}(X, Y), Y <= X.")
        lines.append(f"a{n}(X, Y) :- e(X, Y).")
        return parse_program("\n".join(lines))

    def run():
        iterations = []
        for n in (2, 4, 8):
            program = build(n)
            assert in_terminating_class(program)
            __, report = gen_qrp_constraints(program, "q")
            assert report.converged
            iterations.append((n, report.iterations))
        return iterations

    iterations = benchmark(run)
    record_rows(
        benchmark,
        [{"layers": n, "iterations": i} for n, i in iterations],
    )
    # Monotone growth bounded by depth + 2: the fixpoint needs one
    # round per layer, nowhere near the combinatorial bound.
    for n, i in iterations:
        assert i <= n + 3
