"""CI stress harness: the supervisor under fault injection.

``python benchmarks/serve_stress.py`` drives the acceptance checks for
the serving layer (docs/serving.md) and exits non-zero when any fails:

* **Correctness under faults** -- a 200-request mixed batch (fact
  loads, then queries over several forms) runs through a
  :class:`repro.serve.Supervisor` while injected faults delay
  dispatches, fail attempts (absorbed by retries), and kill a worker
  mid-run.  At least 99% of requests must complete successfully and
  every successful answer set must equal the sequential fault-free
  run's -- zero wrong answers, no matter what the harness breaks.
* **Overload behavior** -- with the session's writer lock held, a
  flood of submissions beyond the queue bound must be shed *fast*
  (bounded, immediate ``REPRO_OVERLOAD``), and every admitted request
  must still complete once the lock is released -- load shedding must
  never lose admitted work.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.governor import FaultPlan, FaultyRecorder  # noqa: E402
from repro.obs.recorder import recording  # noqa: E402
from repro.serve import RetryPolicy, ServeConfig, Supervisor  # noqa: E402
from repro.service import Engine  # noqa: E402

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 1000.
edge(n0, n1, 1).
"""

FACTS = [
    f"edge(n{index}, n{index + 1}, 1)." for index in range(1, 13)
]
QUERY_FORMS = [
    "?- reach(n0, X, C).",
    "?- reach(n3, X, C).",
    "?- reach(n0, X, C), C <= 5.",
    "?- reach(n6, X, C).",
]
N_QUERIES = 200 - len(FACTS)

#: Dispatch delays, five transiently failing attempts (retried), and
#: one worker killed mid-run (its request fails; the pool recovers).
FAULT_SPEC = (
    "delay:serve.dispatch:0.002; "
    "fail:serve.dispatch:20:5; "
    "fail:serve.worker:60:1"
)


def fail(message: str) -> None:
    print(f"serve-stress: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sequential_answers() -> dict:
    engine = Engine.from_text(PROGRAM)
    for spec in FACTS:
        response = engine.add_facts(spec)
        assert response.ok, response.error_message
    return {
        form: sorted(engine.query(form).answer_strings)
        for form in QUERY_FORMS
    }


def stress_phase() -> None:
    expected = sequential_answers()
    engine = Engine.from_text(PROGRAM)
    config = ServeConfig(
        workers=4,
        queue_depth=256,
        retry=RetryPolicy(retries=3, base_delay=0.005),
    )
    plan = FaultPlan.from_spec(FAULT_SPEC)
    with recording(FaultyRecorder(plan)):
        with Supervisor(engine, config) as supervisor:
            fact_requests = [
                supervisor.submit(line) for line in FACTS
            ]
            for request in fact_requests:
                response = request.result(timeout=120)
                if not response.ok:
                    fail(f"fact load failed: {response.error_message}")
            query_lines = [
                QUERY_FORMS[index % len(QUERY_FORMS)]
                for index in range(N_QUERIES)
            ]
            requests = [
                supervisor.submit(line) for line in query_lines
            ]
            responses = [
                request.result(timeout=120) for request in requests
            ]
    stats = supervisor.stats()["serve"]
    total = len(FACTS) + len(responses)
    ok = len(FACTS) + sum(
        1 for response in responses if response.ok
    )
    if stats["shed"]:
        fail(f"unexpected sheds in the stress phase: {stats['shed']}")
    if ok / total < 0.99:
        fail(f"only {ok}/{total} requests completed successfully")
    wrong = 0
    for line, response in zip(query_lines, responses):
        if not response.ok:
            continue
        if sorted(response.answer_strings) != expected[line]:
            wrong += 1
            print(
                f"serve-stress: WRONG ANSWER for {line}: "
                f"{sorted(response.answer_strings)} != "
                f"{expected[line]}",
                file=sys.stderr,
            )
    if wrong:
        fail(f"{wrong} answers differ from the sequential run")
    print(
        f"serve-stress: stress OK: {ok}/{total} completed, "
        f"retries={stats['retries']}, "
        f"worker_deaths={stats['worker_deaths']}, shed=0, "
        "zero wrong answers"
    )


def overload_phase() -> None:
    engine = Engine.from_text(PROGRAM)
    config = ServeConfig(workers=2, queue_depth=16)
    flood = 120
    with Supervisor(engine, config) as supervisor:
        engine.session._rw.acquire_write()  # stall every worker
        try:
            started = time.perf_counter()
            requests = [
                supervisor.submit(QUERY_FORMS[0])
                for _ in range(flood)
            ]
            elapsed = time.perf_counter() - started
            shed = [
                request for request in requests if request.done
            ]
            if elapsed > 5.0:
                fail(f"shedding was not fast: {elapsed:.2f}s")
            if len(shed) < flood - config.queue_depth - config.workers:
                fail(
                    f"queue bound not enforced: only {len(shed)} "
                    f"of {flood} shed"
                )
            for request in shed:
                if request.result().error_code != "REPRO_OVERLOAD":
                    fail("shed request missing REPRO_OVERLOAD")
        finally:
            engine.session._rw.release_write()
        deadline = time.monotonic() + 60
        for request in requests:
            remaining = max(0.1, deadline - time.monotonic())
            response = request.result(timeout=remaining)
            if response.kind == "error" and (
                response.error_code != "REPRO_OVERLOAD"
            ):
                fail(
                    "admitted request lost under overload: "
                    f"{response.error_code}"
                )
    stats = supervisor.stats()["serve"]
    if stats["completed"] + stats["shed"] < flood:
        fail(
            f"request accounting leaked: completed="
            f"{stats['completed']} shed={stats['shed']} of {flood}"
        )
    print(
        f"serve-stress: overload OK: {stats['shed']}/{flood} shed "
        f"fast, every admitted request completed"
    )


def main() -> int:
    stress_phase()
    overload_phase()
    print("serve-stress: all phases OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
