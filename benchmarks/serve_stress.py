"""CI stress harness: the supervisor under fault injection.

``python benchmarks/serve_stress.py`` drives the acceptance checks for
the serving layer (docs/serving.md) and exits non-zero when any fails:

* **Correctness under faults** -- a 200-request mixed batch (fact
  loads, then queries over several forms) runs through a
  :class:`repro.serve.Supervisor` while injected faults delay
  dispatches, fail attempts (absorbed by retries), and kill a worker
  mid-run.  At least 99% of requests must complete successfully and
  every successful answer set must equal the sequential fault-free
  run's -- zero wrong answers, no matter what the harness breaks.
* **Overload behavior** -- with the session's writer lock held, a
  flood of submissions beyond the queue bound must be shed *fast*
  (bounded, immediate ``REPRO_OVERLOAD``), and every admitted request
  must still complete once the lock is released -- load shedding must
  never lose admitted work.

With ``--shards N`` both phases run against a sharded cluster
(:class:`repro.shard.ShardedEngine`) instead of a single session, and
the stress phase additionally SIGKILLs one shard worker mid-run: the
coordinator must isolate the failure to the requests that touched the
dead shard, the supervisor's retry loop must absorb them (a
``REPRO_SHARD`` error is transient -- the next attempt respawns and
WAL-recovers the worker), and the completion and zero-wrong-answer
bars stay exactly where the single-session run puts them.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.governor import FaultPlan, FaultyRecorder  # noqa: E402
from repro.obs.recorder import recording  # noqa: E402
from repro.serve import RetryPolicy, ServeConfig, Supervisor  # noqa: E402
from repro.service import Engine  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

PROGRAM = """
reach(X, Y, C) :- edge(X, Y, C).
reach(X, Z, C) :- reach(X, Y, C1), edge(Y, Z, C2), C = C1 + C2,
    C <= 1000.
edge(n0, n1, 1).
"""

FACTS = [
    f"edge(n{index}, n{index + 1}, 1)." for index in range(1, 13)
]
QUERY_FORMS = [
    "?- reach(n0, X, C).",
    "?- reach(n3, X, C).",
    "?- reach(n0, X, C), C <= 5.",
    "?- reach(n6, X, C).",
]
N_QUERIES = 200 - len(FACTS)

#: Dispatch delays, five transiently failing attempts (retried), and
#: one worker killed mid-run (its request fails; the pool recovers).
FAULT_SPEC = (
    "delay:serve.dispatch:0.002; "
    "fail:serve.dispatch:20:5; "
    "fail:serve.worker:60:1"
)


def fail(message: str) -> None:
    print(f"serve-stress: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sequential_answers() -> dict:
    engine = Engine.from_text(PROGRAM)
    for spec in FACTS:
        response = engine.add_facts(spec)
        assert response.ok, response.error_message
    return {
        form: sorted(engine.query(form).answer_strings)
        for form in QUERY_FORMS
    }


def make_engine(shards: int | None):
    """One single-session or sharded engine plus its closer.

    The sharded cluster runs with a tight op deadline and a live
    heartbeat so the SIGSTOP disruption below is detected in seconds,
    not never -- the same configuration the chaos harness uses.  It
    is also durable (per-shard WALs under a temp dir): the
    zero-wrong-answer bar requires a respawned worker to recover the
    facts it acked, and without a WAL a respawn is an amnesiac whose
    recomputed answers would *legitimately* differ.
    """
    if shards is None:
        return Engine.from_text(PROGRAM), lambda: None
    import shutil
    import tempfile

    snapdir = tempfile.mkdtemp(prefix="repro-stress-shard-")
    engine = ShardedEngine.from_text(
        PROGRAM,
        shards,
        snapshot_dir=snapdir,
        snapshot_every=1000,
        op_timeout=3.0,
        heartbeat_interval=0.5,
    )
    engine.coordinator.recover()

    def close() -> None:
        engine.coordinator.close(drain=False)
        shutil.rmtree(snapdir, ignore_errors=True)

    return engine, close


def stress_phase(shards: int | None = None) -> None:
    expected = sequential_answers()
    engine, close = make_engine(shards)
    config = ServeConfig(
        workers=4,
        queue_depth=256,
        retry=RetryPolicy(retries=3, base_delay=0.005),
    )
    plan = FaultPlan.from_spec(FAULT_SPEC)
    try:
        with recording(FaultyRecorder(plan)):
            with Supervisor(engine, config) as supervisor:
                fact_requests = [
                    supervisor.submit(line) for line in FACTS
                ]
                for request in fact_requests:
                    response = request.result(timeout=120)
                    if not response.ok:
                        fail(
                            "fact load failed: "
                            f"{response.error_message}"
                        )
                query_lines = [
                    QUERY_FORMS[index % len(QUERY_FORMS)]
                    for index in range(N_QUERIES)
                ]
                requests = [
                    supervisor.submit(line) for line in query_lines
                ]
                if shards is not None:
                    # Kill a shard worker while queries are in
                    # flight: the coordinator respawns it and the
                    # supervisor's retries absorb the REPRO_SHARD
                    # failures of the requests that touched it.
                    pids = engine.coordinator.pids()
                    os.kill(pids[shards - 1], signal.SIGKILL)
                    if shards > 1:
                        # And wedge another without killing it: no
                        # pipe closes, so only the heartbeat/op
                        # deadline can notice before SIGKILL +
                        # respawn.  The retry loop must absorb this
                        # gray failure exactly like the crash.
                        os.kill(pids[0], signal.SIGSTOP)
                responses = [
                    request.result(timeout=120)
                    for request in requests
                ]
    finally:
        close()
    stats = supervisor.stats()["serve"]
    total = len(FACTS) + len(responses)
    ok = len(FACTS) + sum(
        1 for response in responses if response.ok
    )
    if stats["shed"]:
        fail(f"unexpected sheds in the stress phase: {stats['shed']}")
    if ok / total < 0.99:
        fail(f"only {ok}/{total} requests completed successfully")
    wrong = 0
    for line, response in zip(query_lines, responses):
        if not response.ok:
            continue
        if sorted(response.answer_strings) != expected[line]:
            wrong += 1
            print(
                f"serve-stress: WRONG ANSWER for {line}: "
                f"{sorted(response.answer_strings)} != "
                f"{expected[line]}",
                file=sys.stderr,
            )
    if wrong:
        fail(f"{wrong} answers differ from the sequential run")
    respawns = (
        f", shard_respawns="
        f"{engine.coordinator.counters['respawns']}"
        if shards is not None
        else ""
    )
    print(
        f"serve-stress: stress OK: {ok}/{total} completed, "
        f"retries={stats['retries']}, "
        f"worker_deaths={stats['worker_deaths']}, shed=0, "
        f"zero wrong answers{respawns}"
    )


def overload_phase(shards: int | None = None) -> None:
    engine, close = make_engine(shards)
    # Holding the writer lock stalls every query attempt -- the
    # session's own lock in single-session mode, the coordinator's
    # in sharded mode.
    lock = (
        engine.coordinator._rw
        if shards is not None
        else engine.session._rw
    )
    config = ServeConfig(workers=2, queue_depth=16)
    flood = 120
    with Supervisor(engine, config) as supervisor:
        lock.acquire_write()  # stall every worker
        try:
            started = time.perf_counter()
            requests = [
                supervisor.submit(QUERY_FORMS[0])
                for _ in range(flood)
            ]
            elapsed = time.perf_counter() - started
            shed = [
                request for request in requests if request.done
            ]
            if elapsed > 5.0:
                fail(f"shedding was not fast: {elapsed:.2f}s")
            if len(shed) < flood - config.queue_depth - config.workers:
                fail(
                    f"queue bound not enforced: only {len(shed)} "
                    f"of {flood} shed"
                )
            for request in shed:
                if request.result().error_code != "REPRO_OVERLOAD":
                    fail("shed request missing REPRO_OVERLOAD")
        finally:
            lock.release_write()
        deadline = time.monotonic() + 60
        for request in requests:
            remaining = max(0.1, deadline - time.monotonic())
            response = request.result(timeout=remaining)
            if response.kind == "error" and (
                response.error_code != "REPRO_OVERLOAD"
            ):
                fail(
                    "admitted request lost under overload: "
                    f"{response.error_code}"
                )
    close()
    stats = supervisor.stats()["serve"]
    if stats["completed"] + stats["shed"] < flood:
        fail(
            f"request accounting leaked: completed="
            f"{stats['completed']} shed={stats['shed']} of {flood}"
        )
    print(
        f"serve-stress: overload OK: {stats['shed']}/{flood} shed "
        f"fast, every admitted request completed"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="serve_stress")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run both phases against an N-shard cluster instead "
        "of a single session (adds a mid-run shard SIGKILL)",
    )
    arguments = parser.parse_args(argv)
    if arguments.shards is not None and arguments.shards < 1:
        parser.error("--shards: expected a positive integer")
    stress_phase(arguments.shards)
    overload_phase(arguments.shards)
    mode = (
        f"sharded x{arguments.shards}"
        if arguments.shards is not None
        else "single-session"
    )
    print(f"serve-stress: all phases OK ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
