"""Examples D.1 and D.2: non-confluence of qrp and constraint magic.

D.1 (Example 7.1's program, free query): ``P^{qrp,mg}`` restricts the
magic rule for ``a2`` with ``X <= 4`` and computes strictly fewer facts
than ``P^{mg,qrp}``.

D.2 (Example 7.2's program, bound query violating ``X <= 4``):
``P^{mg,qrp}`` pushes the constraint into the magic rule for ``a1``
where the query constant kills it, and computes strictly fewer facts
than ``P^{qrp,mg}``.
"""

from repro.core.pipeline import (
    apply_sequence,
    evaluate_pipeline,
    query_answers,
)
from repro.engine import Database
from repro.lang.parser import parse_query

from benchmarks.conftest import record_rows


def run_both(program, query, edb):
    first = evaluate_pipeline(
        apply_sequence(program, query, ["qrp", "mg"]), edb, query
    )
    second = evaluate_pipeline(
        apply_sequence(program, query, ["mg", "qrp"]), edb, query
    )
    return first, second


def test_d1_qrp_first_wins(benchmark, example_71_program, graph_edb_71):
    query = parse_query("?- q(X, Y).")

    first, second = benchmark(
        lambda: run_both(example_71_program, query, graph_edb_71)
    )
    qrp_mg = first.facts_excluding_edb(graph_edb_71)
    mg_qrp = second.facts_excluding_edb(graph_edb_71)
    record_rows(
        benchmark,
        [{"P^{qrp,mg}": qrp_mg, "P^{mg,qrp}": mg_qrp}],
    )
    assert qrp_mg < mg_qrp
    assert query_answers(first, query) == query_answers(second, query)


def test_d2_mg_first_wins(benchmark, example_72_program):
    query = parse_query("?- q(7, Y).")
    edb = Database.from_ground(
        {
            "b1": [(7, 100), (2, 0)],
            "b2": [(100 + i, 101 + i) for i in range(12)] + [(0, 1)],
        }
    )

    first, second = benchmark(
        lambda: run_both(example_72_program, query, edb)
    )
    qrp_mg = first.facts_excluding_edb(edb)
    mg_qrp = second.facts_excluding_edb(edb)
    record_rows(
        benchmark,
        [{"P^{qrp,mg}": qrp_mg, "P^{mg,qrp}": mg_qrp}],
    )
    assert mg_qrp < qrp_mg
    assert query_answers(first, query) == query_answers(second, query)


def test_d1_gap_grows_with_chain_length(
    benchmark, example_71_program
):
    """Parameter sweep: the D.1 gap scales with the pruned chain."""

    def sweep():
        gaps = []
        query = parse_query("?- q(X, Y).")
        for length in (4, 8, 16):
            edb = Database.from_ground(
                {
                    "b1": [(9, 100), (1, 0)],
                    "b2": [(100 + i, 101 + i) for i in range(length)]
                    + [(0, 1)],
                }
            )
            first, second = run_both(example_71_program, query, edb)
            gaps.append(
                (
                    length,
                    first.facts_excluding_edb(edb),
                    second.facts_excluding_edb(edb),
                )
            )
        return gaps

    gaps = benchmark(sweep)
    record_rows(
        benchmark,
        [
            {"chain": length, "P^{qrp,mg}": a, "P^{mg,qrp}": b}
            for length, a, b in gaps
        ],
    )
    differences = [b - a for __, a, b in gaps]
    assert differences == sorted(differences)
    assert differences[-1] > differences[0]
