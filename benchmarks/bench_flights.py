"""Examples 1.1/4.3: flights, original vs. Constraint_rewrite output.

Sweeps network size and the fraction of irrelevant (slow *and*
expensive) legs.  The paper's qualitative claims, asserted here:

* the rewritten program computes **zero** flight facts with
  T > 240 and C > 150, the original computes many;
* the rewritten fact set is a subset of the original's;
* the gap grows with the irrelevant fraction (the crossover: at
  fraction 0 the two programs do essentially the same work).
"""

import pytest

from repro.core.rewrite import constraint_rewrite
from repro.engine import evaluate
from repro.workloads.flights import flight_network, flights_program

from benchmarks.conftest import record_rows


@pytest.fixture(scope="module")
def rewritten():
    return constraint_rewrite(flights_program(), "cheaporshort").program


def evaluate_pair(program, rewritten, network):
    original = evaluate(program, network.database, max_iterations=60)
    optimized = evaluate(rewritten, network.database, max_iterations=60)
    return original, optimized


def irrelevant(result):
    return sum(
        1
        for fact in result.facts("flight")
        if fact.args[2] > 240 and fact.args[3] > 150
    )


@pytest.mark.parametrize("fraction", [0.0, 0.2, 0.4, 0.6])
def test_irrelevant_fraction_sweep(
    benchmark, flights_program, rewritten, fraction
):
    network = flight_network(
        n_layers=4, width=3, expensive_fraction=fraction, seed=7
    )

    def run():
        return evaluate_pair(flights_program, rewritten, network)

    original, optimized = benchmark(run)
    rows = [
        {
            "fraction": fraction,
            "original_flight_facts": original.count("flight"),
            "optimized_flight_facts": optimized.count("flight"),
            "original_irrelevant": irrelevant(original),
            "optimized_irrelevant": irrelevant(optimized),
            "original_derivations": original.stats.derivations,
            "optimized_derivations": optimized.stats.derivations,
        }
    ]
    record_rows(benchmark, rows)
    assert irrelevant(optimized) == 0
    assert set(optimized.facts("flight")) <= set(
        original.facts("flight")
    )
    if fraction > 0 and irrelevant(original) > 0:
        assert optimized.count("flight") < original.count("flight")


@pytest.mark.parametrize("layers,width", [(3, 3), (4, 3), (4, 4)])
def test_network_size_sweep(
    benchmark, flights_program, rewritten, layers, width
):
    network = flight_network(
        n_layers=layers, width=width, expensive_fraction=0.4, seed=11
    )

    def run():
        return evaluate_pair(flights_program, rewritten, network)

    original, optimized = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "layers": layers,
                "width": width,
                "legs": len(network.legs),
                "original_facts": original.count(),
                "optimized_facts": optimized.count(),
            }
        ],
    )
    assert optimized.count() <= original.count()
    assert all(
        fact.is_ground() for fact in optimized.database.all_facts()
    )


def test_rewrite_compile_time(benchmark, flights_program):
    """The cost of Constraint_rewrite itself on the flights program."""
    result = benchmark(
        lambda: constraint_rewrite(flights_program, "cheaporshort")
    )
    assert result.converged
