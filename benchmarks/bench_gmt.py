"""Example 6.1 / Theorem 6.2: GMT grounding as fold/unfold.

Regenerates the Example 6.1 transformation and evaluates the grounded
program, checking the theorem's two claims (range-restriction and query
equivalence) plus the motivation (the intermediate magic program is not
range-restricted and computes constraint facts).
"""

import pytest

from repro.engine import Database, evaluate
from repro.lang.parser import parse_program, parse_query
from repro.magic.gmt import (
    GmtProgram,
    gmt_magic,
    gmt_transform,
    infer_adornment_map,
)

from benchmarks.conftest import record_rows


@pytest.fixture(scope="module")
def example_61():
    program = parse_program(
        """
        p_cf(X, Y) :- U > 10, q_ccf(X, U, V), W > V, p_cf(W, Y).
        p_cf(X, Y) :- u_cf(X, Y).
        q_ccf(X, Y, Z) :- q1_cf(X, U), q2_fc(W, Y), q3_bbf(U, W, Z).
        """
    ).relabeled()
    query = parse_query("?- X > 10, p_cf(X, Y).")
    return program, query


@pytest.fixture(scope="module")
def gmt_edb():
    return Database.from_ground(
        {
            "u_cf": [(11, 100), (12, 200), (5, 300), (15, 400)],
            "q1_cf": [(11, 20), (15, 25), (20, 30), (12, 40)],
            "q2_fc": [(12, 11), (11, 15), (4, 5), (13, 12)],
            "q3_bbf": [
                (20, 12, 7), (25, 11, 8), (30, 4, 9), (40, 13, 10),
            ],
        }
    )


def test_gmt_transformation_cost(benchmark, example_61):
    program, query = example_61
    result = benchmark(lambda: gmt_transform(program, query))
    record_rows(
        benchmark,
        [
            {
                "rules": len(result),
                "range_restricted": result.is_range_restricted(),
            }
        ],
    )
    assert len(result) == 9  # the paper's final rule count
    assert result.is_range_restricted()


def test_grounded_evaluation(benchmark, example_61, gmt_edb):
    program, query = example_61
    grounded = gmt_transform(program, query)

    def run():
        return evaluate(grounded, gmt_edb, max_iterations=40)

    result = benchmark(run)
    assert result.reached_fixpoint
    assert all(fact.is_ground() for fact in result.database.all_facts())
    plain = evaluate(program, gmt_edb, max_iterations=40)
    want = {
        fact.ground_tuple()
        for fact in plain.facts("p_cf")
        if fact.args[0] > 10
    }
    got = {fact.ground_tuple() for fact in result.facts("p_cf")}
    record_rows(
        benchmark,
        [{"answers": len(got), "grounded_facts": result.count()}],
    )
    assert got == want


def test_ungrounded_magic_computes_constraint_facts(
    benchmark, example_61, gmt_edb
):
    """The motivation: without grounding, constraint facts appear."""
    program, query = example_61
    gmt = GmtProgram(program, infer_adornment_map(program), "p_cf")
    magic_program = gmt_magic(gmt, query)

    def run():
        return evaluate(magic_program, gmt_edb, max_iterations=15)

    result = benchmark(run)
    nonground = sum(
        1 for fact in result.database.all_facts() if not fact.is_ground()
    )
    record_rows(benchmark, [{"constraint_facts": nonground}])
    assert nonground > 0
