"""Ablation: disjunct representation trade-off (Section 4.6).

Three ways to propagate flight's 2-disjunct QRP constraint:

* **overlapping** (as generated): fewest rules, but cheap+short legs
  are derived once per overlapping disjunct;
* **disjoint** (``make_disjoint``): no duplicate derivations, more rules;
* **single hull** (``single_disjunct_relaxation``): one rule per
  original, but no pruning beyond the predicate constraint
  ($3 > 0 & $4 > 0) -- irrelevant facts come back.

The trade-off triple (facts, derivations, rules) is regenerated here.
"""

import pytest

from repro.constraints.disjoint import (
    make_disjoint,
    single_disjunct_relaxation,
)
from repro.core.predconstraints import gen_prop_predicate_constraints
from repro.core.qrp import gen_prop_qrp_constraints, gen_qrp_constraints
from repro.core.rewrite import wrap_query_predicate
from repro.engine import evaluate
from repro.workloads.flights import flight_network, flights_program

from benchmarks.conftest import record_rows


@pytest.fixture(scope="module")
def variants():
    base = flights_program()
    wrapped = wrap_query_predicate(base, "cheaporshort")
    propagated, __, __ = gen_prop_predicate_constraints(wrapped)
    qrp, __ = gen_qrp_constraints(propagated, "q1")

    def rewrite(transform):
        constraints = {
            pred: transform(cset) for pred, cset in qrp.items()
        }
        result = gen_prop_qrp_constraints(
            propagated, "q1", constraints=constraints
        )
        from repro.lang.ast import Program

        return Program(
            rule for rule in result.program if rule.head.pred != "q1"
        ).restrict_to_reachable(["cheaporshort"])

    return {
        "overlapping": rewrite(lambda cset: cset),
        "disjoint": rewrite(make_disjoint),
        "single_hull": rewrite(single_disjunct_relaxation),
    }


def test_disjunct_representation_tradeoff(benchmark, variants):
    network = flight_network(
        n_layers=4, width=3, expensive_fraction=0.4, seed=13
    )

    def run():
        return {
            name: evaluate(program, network.database, max_iterations=60)
            for name, program in variants.items()
        }

    results = benchmark(run)
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "variant": name,
                "rules": len(variants[name]),
                "flight_facts": result.count("flight"),
                "derivations": result.stats.derivations,
                "duplicates": result.stats.duplicates,
            }
        )
    record_rows(benchmark, rows)
    by_name = {row["variant"]: row for row in rows}
    # Section 4.6's predictions:
    # (1) disjoint never exceeds overlapping in derivations;
    assert (
        by_name["disjoint"]["derivations"]
        <= by_name["overlapping"]["derivations"]
    )
    # (2) single hull computes at least as many facts (it prunes less);
    assert (
        by_name["single_hull"]["flight_facts"]
        >= by_name["overlapping"]["flight_facts"]
    )
    # (3) all variants agree on the optimized fact subset relation:
    #     overlapping and disjoint compute the same flight facts.
    overlapping = set(results["overlapping"].facts("flight"))
    disjoint = set(results["disjoint"].facts("flight"))
    assert overlapping == disjoint


def test_answers_identical_across_variants(benchmark, variants):
    network = flight_network(
        n_layers=3, width=3, expensive_fraction=0.3, seed=17
    )

    def run():
        return {
            name: evaluate(program, network.database, max_iterations=60)
            for name, program in variants.items()
        }

    results = benchmark(run)
    answer_sets = {
        name: frozenset(result.facts("cheaporshort"))
        for name, result in results.items()
    }
    assert len(set(answer_sets.values())) == 1
