"""Constraint relevance (Definition 2.5) as a measured quantity.

The paper's goal -- "only facts that are constraint-relevant to (P, Q)
are computed" -- made into a number: the fraction of computed IDB facts
occurring in some answer's derivation tree. The rewritten flights
program must reach ratio 1.0 while the original sits well below.
"""

import pytest

from repro.core.relevance import relevance_report
from repro.core.rewrite import constraint_rewrite
from repro.engine import evaluate
from repro.lang.parser import parse_query
from repro.workloads.flights import flight_network, flights_program

from benchmarks.conftest import record_rows


@pytest.fixture(scope="module")
def rewritten():
    return constraint_rewrite(flights_program(), "cheaporshort").program


@pytest.mark.parametrize("fraction", [0.2, 0.4, 0.6])
def test_relevance_ratio_sweep(benchmark, rewritten, fraction):
    network = flight_network(
        n_layers=4, width=3, expensive_fraction=fraction, seed=21
    )
    query = parse_query("?- cheaporshort(S, D, T, C).")

    def run():
        original = evaluate(
            flights_program(), network.database, max_iterations=60
        )
        optimized = evaluate(
            rewritten, network.database, max_iterations=60
        )
        return (
            relevance_report(original, query),
            relevance_report(optimized, query),
        )

    before, after = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "fraction": fraction,
                "original_ratio": round(before.ratio, 3),
                "optimized_ratio": round(after.ratio, 3),
                "original_irrelevant": len(before.irrelevant),
                "optimized_irrelevant": len(after.irrelevant),
            }
        ],
    )
    assert after.ratio == 1.0
    assert before.ratio < after.ratio


def test_relevance_tracing_cost(benchmark, rewritten):
    """The cost of the provenance walk itself."""
    network = flight_network(
        n_layers=4, width=3, expensive_fraction=0.4, seed=21
    )
    result = evaluate(rewritten, network.database, max_iterations=60)
    query = parse_query("?- cheaporshort(S, D, T, C).")
    report = benchmark(lambda: relevance_report(result, query))
    assert report.ratio == 1.0
