"""Ablation: constraint-driven range indexing (Section 4.6, point 2).

"These constraints can be used for effective indexing of relations ...
the constraints Cost <= 150 and Time <= 240 could be used to
efficiently retrieve (via B trees, etc.) singleleg tuples."  The
ordered per-position index turns the pushed constraints into range
probes; this ablation measures probe counts with and without it, at
identical results.
"""

import pytest

from repro.core.rewrite import constraint_rewrite
from repro.engine import Database, evaluate
from repro.lang.parser import parse_program
from repro.workloads.flights import flight_network, flights_program

from benchmarks.conftest import record_rows


@pytest.mark.parametrize("selectivity", [10, 100, 1000])
def test_selection_probe_counts(benchmark, selectivity):
    program = parse_program(
        f"cheap(X, C) :- item(X, C), C <= {selectivity}."
    )
    edb = Database.from_ground(
        {"item": [(i, i) for i in range(1, 2001)]}
    )

    def run():
        with_index = evaluate(program, edb, use_range_index=True)
        without = evaluate(program, edb, use_range_index=False)
        return with_index, without

    with_index, without = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "selectivity": selectivity,
                "probes_with_index": with_index.stats.probes,
                "probes_without": without.stats.probes,
            }
        ],
    )
    assert set(with_index.facts("cheap")) == set(without.facts("cheap"))
    assert with_index.stats.probes <= selectivity + 1
    assert without.stats.probes >= 2000


def test_rewritten_flights_benefit(benchmark):
    """The pushed QRP constraints become index range probes."""
    rewritten = constraint_rewrite(
        flights_program(), "cheaporshort"
    ).program
    network = flight_network(
        n_layers=4, width=4, expensive_fraction=0.5, seed=29
    )

    def run():
        with_index = evaluate(
            rewritten, network.database,
            max_iterations=60, use_range_index=True,
        )
        without = evaluate(
            rewritten, network.database,
            max_iterations=60, use_range_index=False,
        )
        return with_index, without

    with_index, without = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "probes_with_index": with_index.stats.probes,
                "probes_without": without.stats.probes,
            }
        ],
    )
    assert with_index.stats.probes < without.stats.probes
    assert with_index.count() == without.count()
