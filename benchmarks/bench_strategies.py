"""End-to-end strategy comparison through the driver (user's-eye view).

One table per workload: every strategy of ``repro.driver`` on the same
program/EDB/query, with total facts and derivations. The expected shape
follows Section 7: ``optimal`` (pred,qrp,mg) never computes more facts
than ``magic`` alone, and ``rewrite`` never more than ``none``.
"""

import pytest

from repro.driver import STRATEGIES, answer_query
from repro.engine import Database
from repro.lang.parser import parse_query
from repro.workloads.flights import flight_network, flights_program
from repro.workloads.graphs import random_edges

from benchmarks.conftest import record_rows


def sweep(program, query, edb, eval_iterations=80):
    outcomes = {}
    for strategy in STRATEGIES:
        outcomes[strategy] = answer_query(
            program, query, edb, strategy=strategy,
            eval_iterations=eval_iterations,
        )
    return outcomes


def summarize(outcomes, edb):
    return {
        strategy: {
            "facts": outcome.result.count() - edb.count(),
            "derivations": outcome.result.stats.derivations,
        }
        for strategy, outcome in outcomes.items()
    }


def check_shape(outcomes, edb):
    answers = {
        frozenset(outcome.answer_strings)
        for outcome in outcomes.values()
    }
    assert len(answers) == 1
    counts = {
        strategy: outcome.result.count()
        for strategy, outcome in outcomes.items()
    }
    assert counts["rewrite"] <= counts["none"]
    assert counts["optimal"] <= counts["magic"]


def test_strategies_on_flights(benchmark):
    network = flight_network(
        n_layers=4, width=3, expensive_fraction=0.4, seed=31
    )
    query = parse_query(
        f"?- cheaporshort({network.source}, {network.destination},"
        " T, C)."
    )
    program = flights_program()

    outcomes = benchmark(
        lambda: sweep(program, query, network.database)
    )
    record_rows(
        benchmark, [summarize(outcomes, network.database)]
    )
    check_shape(outcomes, network.database)


def test_strategies_on_bounded_tc(benchmark):
    from repro.lang.parser import parse_program

    program = parse_program(
        """
        q(X, Y) :- t(X, Y), X <= 3.
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
        """
    )
    edb = Database.from_ground(
        {"e": random_edges(25, max_node=12, seed=33)}
    )
    query = parse_query("?- q(2, Y).")

    outcomes = benchmark(lambda: sweep(program, query, edb))
    record_rows(benchmark, [summarize(outcomes, edb)])
    check_shape(outcomes, edb)
