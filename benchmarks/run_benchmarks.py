"""Machine-readable benchmark runner: ``python benchmarks/run_benchmarks.py``.

Runs a fixed suite of paper workloads (flights / Example 4.1 /
Example 5.1 / fib-with-magic) through the driver under a fresh
:class:`repro.obs.Tracer`, and writes ``BENCH_results.json`` with, per
benchmark: best-of-N wall-clock per pipeline phase, the engine's
:class:`~repro.engine.stats.EvalStats`, and every constraint-op counter
the observability layer collects (satisfiability checks, projections,
subsumption tests, join probes, rewrite-fixpoint iterations).

This file seeds the repository's performance trajectory: every perf PR
can diff its ``BENCH_results.json`` against the previous one and point
at the counter that moved.  Unlike ``pytest benchmarks/ --benchmark-only``
(which regenerates the paper's tables), this entry point needs no test
harness and emits one self-contained JSON document.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro import obs  # noqa: E402
from repro.driver import answer_query, split_edb  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.lang.parser import (  # noqa: E402
    parse_program,
    parse_query,
)
from repro.workloads.fib import fib_program, fib_query  # noqa: E402
from repro.workloads.flights import (  # noqa: E402
    flight_network,
    flights_program,
)


SCHEMA = "repro-bench/v1"


@dataclass(frozen=True)
class Benchmark:
    """One named (program, edb, query, strategy) measurement."""

    name: str
    strategy: str
    build: Callable[[], tuple]  # () -> (program, query, edb)
    eval_iterations: int = 200


def _flights_case() -> tuple:
    network = flight_network(n_layers=4, width=4, seed=1)
    query = parse_query(
        f"?- cheaporshort({network.source}, {network.destination}, T, C)."
    )
    return flights_program(), query, network.database


def _example41_case() -> tuple:
    program = parse_program(
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """
    ).relabeled()
    edb = Database.from_ground(
        {
            "b1": [(x, y) for x in range(12) for y in range(12)],
            "b2": [(y,) for y in range(12)],
        }
    )
    return program, parse_query("?- q(X)."), edb


def _example51_case() -> tuple:
    program = parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10, Y <= X.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
        """
    ).relabeled()
    edb = Database.from_ground(
        {"p": [(x, x - 1) for x in range(1, 25)]}
    )
    return program, parse_query("?- q(X, Y)."), edb


def _fib_case() -> tuple:
    return fib_program(), fib_query(5), Database()


SUITE = (
    Benchmark("flights", "none", _flights_case),
    Benchmark("flights", "rewrite", _flights_case),
    Benchmark("flights", "optimal", _flights_case),
    Benchmark("flights", "auto", _flights_case),
    Benchmark("example41", "none", _example41_case),
    Benchmark("example41", "rewrite", _example41_case),
    Benchmark("example41", "auto", _example41_case),
    Benchmark("example51", "rewrite", _example51_case),
    Benchmark("example51", "auto", _example51_case),
    # Table 1's point is that P_fib^{mg} answers the query but never
    # reaches a fixpoint; the capped run is the intended measurement.
    Benchmark("fib", "magic", _fib_case, eval_iterations=12),
    Benchmark("fib", "auto", _fib_case, eval_iterations=12),
)


def _phase_seconds(root: obs.Span) -> dict[str, float]:
    """Wall-clock of the canonical top-level phases, when present."""
    phases = {}
    for name in (
        "optimize",
        "rewrite.pred",
        "rewrite.qrp",
        "adorn",
        "magic",
        "evaluate",
        "fixpoint",
        "answers",
    ):
        spans = root.find_all(name)
        if spans:
            phases[name] = sum(span.duration for span in spans)
    return phases


def run_benchmark(bench: Benchmark, repeat: int) -> dict:
    """Measure one benchmark; returns its JSON-ready result row.

    The solver memo is cleared once per row (not per repeat), so rows
    are order-independent and, with ``repeat > 1``, the kept
    best-of-N measurement is a deterministic warm-memo run -- the
    steady state a long-lived process sees.  The cold/warm split
    itself is measured by the ``constraint-ops`` row.
    """
    from repro.constraints import cache as solver_cache

    solver_cache.clear()
    program, query, edb = bench.build()
    rules, extra_edb = split_edb(program)
    if extra_edb.count():
        merged = edb.copy()
        for pred in extra_edb.predicates():
            for fact in extra_edb.facts(pred):
                merged.insert(fact)
        edb = merged
    best_seconds = None
    best: dict = {}
    for __ in range(repeat):
        tracer = obs.Tracer()
        started = time.perf_counter()
        with obs.recording(tracer):
            outcome = answer_query(
                rules,
                query,
                edb,
                strategy=bench.strategy,
                eval_iterations=bench.eval_iterations,
            )
        elapsed = time.perf_counter() - started
        tracer.finish()
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best = {
                "name": bench.name,
                "strategy": bench.strategy,
                "seconds": elapsed,
                "phase_seconds": _phase_seconds(tracer.root),
                "answers": len(outcome.answers),
                "reached_fixpoint": outcome.result.reached_fixpoint,
                "stats": outcome.result.stats.as_dict(),
                "counters": dict(
                    sorted(tracer.metrics.counters.items())
                ),
                "notes": list(outcome.notes),
            }
    return best


def run_constraint_ops_benchmark(
    repeat: int, small: bool = False
) -> dict:
    """Microbenchmark of the constraint layer itself (docs/constraints.md).

    Runs a fixed, deterministic mix of projection / satisfiability /
    implication queries over a pool of interned conjunctions twice per
    measurement: a *cold* pass on a cleared solver memo (every answer
    computed by integer-scaled Fourier-Motzkin) and a *warm* pass
    repeating the same queries (answers come from the memo and the
    per-form lazy fields).  Reports both wall-clocks, the warm/cold
    speedup, the solver-op counters of each pass, and the warm-pass
    cache hit rate -- the row perf PRs diff when they touch
    ``repro.constraints``.
    """
    import gc
    from fractions import Fraction

    from repro.constraints import cache as solver_cache
    from repro.constraints.atom import Atom
    from repro.constraints.conjunction import Conjunction
    from repro.constraints.cset import ConstraintSet
    from repro.constraints.linexpr import LinearExpr

    pool_size = 40 if small else 120

    def build_pool() -> tuple[list, "ConstraintSet"]:
        conjunctions = []
        for index in range(pool_size):
            a = (index % 7) - 3 or 1
            b = (index % 5) - 2 or 1
            atoms = [
                Atom.make(
                    LinearExpr({"X": 1, "Y": Fraction(a)}),
                    "<=",
                    LinearExpr.const(index % 11),
                ),
                Atom.make(
                    LinearExpr({"Y": 1, "Z": Fraction(b)}),
                    ">=",
                    LinearExpr.const(-(index % 9)),
                ),
                Atom.make(
                    LinearExpr({"X": 1, "Z": -1}),
                    "<=",
                    LinearExpr.const(index % 13),
                ),
                Atom.make(
                    LinearExpr({"X": 1}),
                    ">=",
                    LinearExpr.const((index % 4) - 1),
                ),
            ]
            conjunctions.append(Conjunction(atoms))
        return conjunctions, ConstraintSet(conjunctions[:4])

    def run_ops(conjunctions, targets) -> int:
        checksum = 0
        for conjunction in conjunctions:
            checksum += conjunction.is_satisfiable()
            checksum += len(conjunction.project({"X", "Y"}).atoms)
            checksum += len(conjunction.project({"Z"}).atoms)
            checksum += conjunction.implies_set(targets)
        return checksum

    def timed_pass(label, conjunctions, targets):
        tracer = obs.Tracer()
        started = time.perf_counter()
        with obs.recording(tracer):
            with obs.span(label):
                checksum = run_ops(conjunctions, targets)
        elapsed = time.perf_counter() - started
        tracer.finish()
        return elapsed, checksum, tracer.metrics.counters

    best: dict = {}
    best_cold = None
    conjunctions = targets = None
    for __ in range(repeat):
        # A genuinely cold pass needs fresh forms: the intern tables
        # hold weak references, so dropping the previous pool and
        # collecting leaves nothing with a warm per-instance memo.
        conjunctions = targets = None
        gc.collect()
        solver_cache.configure(
            enabled=True, max_size=solver_cache.DEFAULT_MAX_SIZE
        )
        solver_cache.clear()
        solver_cache.CACHE.reset_stats()
        conjunctions, targets = build_pool()
        cold_seconds, cold_sum, cold_counters = timed_pass(
            "constraint-ops-cold", conjunctions, targets
        )
        warm_seconds, warm_sum, warm_counters = timed_pass(
            "constraint-ops-warm", conjunctions, targets
        )
        assert warm_sum == cold_sum, "warm pass changed answers"
        if best_cold is not None and cold_seconds >= best_cold:
            continue
        best_cold = cold_seconds
        warm_hits = warm_counters.get("constraint.cache_hits", 0)
        warm_misses = warm_counters.get("constraint.cache_misses", 0)
        best = {
            "name": "constraint-ops",
            "strategy": "none",
            "seconds": cold_seconds,
            "counters": dict(sorted(cold_counters.items())),
            "constraint_ops": {
                "pool_size": pool_size,
                "queries": 4 * pool_size,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "warm_speedup": cold_seconds
                / max(warm_seconds, 1e-9),
                "cold_projections": cold_counters.get(
                    "constraint.projections", 0
                ),
                "cold_sat_checks": cold_counters.get(
                    "constraint.sat_checks", 0
                ),
                "warm_projections": warm_counters.get(
                    "constraint.projections", 0
                ),
                "warm_sat_checks": warm_counters.get(
                    "constraint.sat_checks", 0
                ),
                "warm_cache_hit_rate": warm_hits
                / max(warm_hits + warm_misses, 1),
            },
        }
    return best


def run_service_benchmark(repeat: int, small: bool = False) -> dict:
    """The repeated-query service workload (docs/service.md).

    Streams one query *form* -- ``?- cheaporshort(Src, Dst, T, C).`` --
    with varying source/destination constants through a long-lived
    :class:`repro.service.Engine`, and records what the compile-once /
    warm-database machinery buys: the form-cache hit rate, the cold
    (first-request) latency, and the warm repeat latency.
    """
    from repro.engine.facts import Fact
    from repro.service import Engine

    width = 2 if small else 4
    network = flight_network(n_layers=4, width=width, seed=1)
    pairs = [
        (src, dst)
        for src in network.layers[0]
        for dst in network.layers[-1]
    ]
    best: dict = {}
    best_total = None
    for __ in range(repeat):
        tracer = obs.Tracer()
        with obs.recording(tracer):
            engine = Engine(flights_program(), strategy="rewrite")
            engine.add_facts(
                Fact.ground("singleleg", leg) for leg in network.legs
            )
            latencies = []
            answers = 0
            for src, dst in pairs:
                started = time.perf_counter()
                response = engine.query(
                    f"?- cheaporshort({src}, {dst}, T, C)."
                )
                latencies.append(time.perf_counter() - started)
                assert response.ok, response.error_message
                answers += len(response.answers)
        tracer.finish()
        total = sum(latencies)
        if best_total is not None and total >= best_total:
            continue
        best_total = total
        cache = engine.stats()["cache"]
        warm = latencies[1:]
        counters = tracer.metrics.counters
        best = {
            "name": "service-repeat",
            "strategy": "rewrite",
            "seconds": total,
            "answers": answers,
            "counters": dict(sorted(counters.items())),
            "service": {
                "queries": len(pairs),
                "form_compiles": counters.get(
                    "service.form_compiles", 0
                ),
                "cache_hit_rate": cache["hits"]
                / (cache["hits"] + cache["misses"]),
                "warm_hits": counters.get("service.warm_hits", 0),
                "cold_seconds": latencies[0],
                "warm_mean_seconds": sum(warm) / len(warm),
                "warm_best_seconds": min(warm),
                "warm_speedup": latencies[0]
                / max(sum(warm) / len(warm), 1e-9),
            },
        }
    return best


def run_planner_benchmark(repeat: int, small: bool = False) -> dict:
    """The planner-adaptation workload (docs/planner.md).

    Streams the flights query form with rotating source/destination
    constants through one long-lived ``auto`` session for several
    rounds -- enough requests for the adaptive planner to probe its
    candidates and converge -- and through one fixed-strategy session
    per pipeline for comparison.  Reports, per strategy, the cold
    (first-request) latency and the median latency of the *final*
    round (post-adaptation steady state), best-of-``repeat``, plus the
    two acceptance ratios: ``converged_vs_best`` (auto's steady-state
    median over the best fixed strategy's) and ``cold_vs_best``
    (auto's first request, which pays for stats collection and
    planning, over the best fixed cold).
    """
    from repro.engine.facts import Fact
    from repro.service import Engine

    width = 2 if small else 4
    rounds = 3 if small else 4
    network = flight_network(n_layers=4, width=width, seed=1)
    pairs = [
        (src, dst)
        for src in network.layers[0]
        for dst in network.layers[-1]
    ]
    strategies = ("none", "rewrite", "magic", "optimal", "auto")
    # Steady-state warm hits are a few hundred microseconds here, so
    # the acceptance ratios would be hostage to scheduler noise if the
    # strategies ran seconds apart.  Three mitigations, all about the
    # measurement and none about the planner: the per-query timings
    # are *interleaved* (every strategy's engine answers the same
    # query back to back, so a load spike taxes them all alike), the
    # steady state is the final round's *median*, and every figure is
    # best-of-``repeat`` (the suite's usual best-of-N wall clocks).
    per_strategy: dict[str, dict] = {}
    planner_stats: dict = {}
    counters: dict = {}
    best_auto = None
    for __ in range(repeat):
        tracer = obs.Tracer()
        with obs.recording(tracer):
            engines = {}
            latencies: dict[str, list[float]] = {}
            for strategy in strategies:
                engine = Engine(flights_program(), strategy=strategy)
                engine.add_facts(
                    Fact.ground("singleleg", leg)
                    for leg in network.legs
                )
                engines[strategy] = engine
                latencies[strategy] = []
            # Vary who runs after whom: a heavy evaluation leaves
            # garbage whose collection taxes whoever runs next, so any
            # fixed cyclic order bills one strategy for its
            # predecessor's allocations every time.  Cycling through
            # all orderings spreads that debt evenly.
            orders = list(itertools.permutations(strategies))
            query_index = 0
            for round_index in range(rounds):
                for src, dst in pairs:
                    request = f"?- cheaporshort({src}, {dst}, T, C)."
                    order = orders[query_index % len(orders)]
                    query_index += 1
                    for strategy in order:
                        started = time.perf_counter()
                        response = engines[strategy].query(request)
                        latencies[strategy].append(
                            time.perf_counter() - started
                        )
                        assert response.ok, response.error_message
            for strategy in strategies:
                timings = latencies[strategy]
                final_round = sorted(timings[-len(pairs):])
                row = {
                    "cold_seconds": timings[0],
                    "total_seconds": sum(timings),
                    "final_round_median_seconds": (
                        final_round[len(final_round) // 2]
                    ),
                }
                previous = per_strategy.get(strategy)
                per_strategy[strategy] = (
                    row
                    if previous is None
                    else {
                        key: min(row[key], previous[key])
                        for key in row
                    }
                )
                if strategy == "auto":
                    auto_total = row["total_seconds"]
                    if best_auto is None or auto_total < best_auto:
                        best_auto = auto_total
                        planner_stats = (
                            engines["auto"].stats()["planner"]
                        )
        tracer.finish()
        counters = dict(sorted(tracer.metrics.counters.items()))
    fixed = {
        name: row
        for name, row in per_strategy.items()
        if name != "auto"
    }
    best_fixed_final = min(
        row["final_round_median_seconds"] for row in fixed.values()
    )
    best_fixed_cold = min(
        row["cold_seconds"] for row in fixed.values()
    )
    auto_row = per_strategy["auto"]
    return {
        "name": "planner-adaptation",
        "strategy": "auto",
        "seconds": auto_row["total_seconds"],
        "counters": counters,
        "planner": {
            "queries_per_strategy": rounds * len(pairs),
            "rounds": rounds,
            "repeat": repeat,
            "strategies": per_strategy,
            "converged_vs_best": (
                auto_row["final_round_median_seconds"]
                / max(best_fixed_final, 1e-9)
            ),
            "cold_vs_best": (
                auto_row["cold_seconds"]
                / max(best_fixed_cold, 1e-9)
            ),
            "records": {
                form: {
                    "state": record["state"],
                    "chosen": record["chosen"],
                    "model_choice": record["model_choice"],
                    "replans": record["replans"],
                }
                for form, record in planner_stats.get(
                    "records", {}
                ).items()
            },
        },
    }


def run_serve_benchmark(repeat: int, small: bool = False) -> dict:
    """The concurrent-serving stress workload (docs/serving.md).

    Hammers a :class:`repro.serve.Supervisor` worker pool with mixed
    queries and fact loads from several submitter threads and records
    throughput, shed rate, and the completion latency distribution.
    Note the honest caveat: under CPython's GIL the pool buys
    *isolation and robustness*, not CPU parallelism -- the interesting
    numbers are zero failed requests and a bounded shed rate under
    pressure, not a speedup over the sequential run.
    """
    import threading

    from repro.engine.facts import Fact
    from repro.serve import ServeConfig, Supervisor
    from repro.service import Engine

    width = 2 if small else 3
    submitters = 2 if small else 4
    per_submitter = 10 if small else 25
    network = flight_network(n_layers=4, width=width, seed=1)
    pairs = [
        (src, dst)
        for src in network.layers[0]
        for dst in network.layers[-1]
    ]
    best: dict = {}
    best_total = None
    for __ in range(repeat):
        engine = Engine(flights_program(), strategy="rewrite")
        engine.add_facts(
            Fact.ground("singleleg", leg) for leg in network.legs
        )
        supervisor = Supervisor(
            engine, ServeConfig(workers=4, queue_depth=128)
        ).start()
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()

        def submitter(which: int) -> None:
            for index in range(per_submitter):
                src, dst = pairs[(which + index) % len(pairs)]
                if index % 5 == 4:
                    line = (
                        f"singleleg(extra{which}_{index}, "
                        f"{dst}, 60, 120)."
                    )
                else:
                    line = f"?- cheaporshort({src}, {dst}, T, C)."
                started = time.perf_counter()
                request = supervisor.submit(line)
                if request is None:
                    continue
                response = request.result(timeout=120)
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if not response.ok and (
                        response.error_code != "REPRO_OVERLOAD"
                    ):
                        failures.append(response.error_code)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=submitter, args=(which,))
            for which in range(submitters)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = time.perf_counter() - started
        supervisor.drain()
        if best_total is not None and total >= best_total:
            continue
        best_total = total
        stats = supervisor.stats()["serve"]
        ranked = sorted(latencies)
        best = {
            "name": "serve-concurrent",
            "strategy": "rewrite",
            "seconds": total,
            "serve": {
                "submitters": submitters,
                "workers": 4,
                "requests": stats["submitted"],
                "completed": stats["completed"],
                "shed": stats["shed"],
                "shed_rate": stats["shed"]
                / max(stats["submitted"], 1),
                "failures": failures,
                "throughput_rps": stats["submitted"] / total,
                "latency_p50_seconds": ranked[len(ranked) // 2],
                "latency_p95_seconds": ranked[
                    int(len(ranked) * 0.95)
                ],
            },
        }
        assert not failures, f"serve benchmark failures: {failures}"
    return best


def run_recover_benchmark(repeat: int, small: bool = False) -> dict:
    """The recover-cold workload (docs/serving.md, docs/planner.md).

    Measures time-to-first-answer after crash recovery for an
    ``auto``-strategy server, with vs. without the planner records the
    checkpoint embeds.  One supervisor converges the adaptive planner
    and drains (its final checkpoint persists the converged records);
    a copy of the snapshot directory is rewritten with the records
    stripped (CRC recomputed, so the copy is a *valid* snapshot that
    simply predates planner persistence).  Restarting against each
    directory shows what persistence buys: the with-records session is
    converged before its first request (``probe_requests == 0`` -- the
    probe phase is skipped entirely) and answers faster, while the
    stripped session re-pays stats collection, planning, and the whole
    probe phase.
    """
    import os
    import shutil
    import tempfile

    from repro.engine.facts import Fact
    from repro.serve import ServeConfig, Supervisor
    from repro.serve.snapshot import SCHEMA, _canonical, _crc
    from repro.service import Engine

    width = 2 if small else 3
    network = flight_network(n_layers=4, width=width, seed=1)
    src = network.layers[0][0]
    dst = network.layers[-1][0]
    request = f"?- cheaporshort({src}, {dst}, T, C)."
    program_id = "bench-recover-cold"

    def converged(engine: "Engine") -> bool:
        return engine.stats()["planner"]["converged"] >= 1

    def strip_planner_records(directory: str) -> None:
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("snapshot-")
            and name.endswith(".json")
        )
        path = os.path.join(directory, names[-1])
        with open(path) as handle:
            payload = json.load(handle)
        body = {
            key: value
            for key, value in payload.items()
            if key not in ("schema", "crc")
        }
        body["planner"] = []
        with open(path, "w") as handle:
            json.dump(
                {
                    "schema": SCHEMA,
                    "crc": _crc(_canonical(body)),
                    **body,
                },
                handle,
            )

    def restart(directory: str) -> tuple[dict, float, int]:
        """Recover, answer once (timed), count probe requests."""
        engine = Engine(flights_program(), strategy="auto")
        supervisor = Supervisor(
            engine,
            ServeConfig(
                workers=2,
                snapshot_dir=directory,
                snapshot_every=1000,
            ),
            program_id=program_id,
        )
        recovery = supervisor.recover()
        supervisor.start()
        started = time.perf_counter()
        response = supervisor.submit(request).result(timeout=120)
        first = time.perf_counter() - started
        assert response.ok, response.error_message
        probes = 0
        while not converged(engine) and probes < 60:
            supervisor.submit(request).result(timeout=120)
            probes += 1
        supervisor.drain()
        return recovery, first, probes

    best: dict = {}
    best_first = None
    for __ in range(repeat):
        base = tempfile.mkdtemp(prefix="repro-recover-bench-")
        try:
            warm_dir = os.path.join(base, "with-records")
            engine = Engine(flights_program(), strategy="auto")
            engine.add_facts(
                Fact.ground("singleleg", leg)
                for leg in network.legs
            )
            supervisor = Supervisor(
                engine,
                ServeConfig(
                    workers=2,
                    snapshot_dir=warm_dir,
                    snapshot_every=1000,
                ),
                program_id=program_id,
            ).start()
            rounds = 0
            while not converged(engine) and rounds < 60:
                supervisor.submit(request).result(timeout=120)
                rounds += 1
            assert converged(engine), "planner never converged"
            supervisor.drain()

            cold_dir = os.path.join(base, "without-records")
            shutil.copytree(warm_dir, cold_dir)
            strip_planner_records(cold_dir)

            recovery, first_with, probes_with = restart(warm_dir)
            __, first_without, probes_without = restart(cold_dir)
        finally:
            shutil.rmtree(base, ignore_errors=True)
        # The restarted session must be converged before its first
        # request -- persisted records skip the probe phase outright.
        assert probes_with == 0, probes_with
        assert recovery["planner_records_restored"] >= 1, recovery
        if best_first is not None and first_with >= best_first:
            continue
        best_first = first_with
        best = {
            "name": "recover-cold",
            "strategy": "auto",
            "seconds": first_with,
            "recover": {
                "facts_restored": recovery["facts_restored"],
                "planner_records_restored": recovery[
                    "planner_records_restored"
                ],
                "first_answer_with_records_seconds": first_with,
                "first_answer_without_records_seconds": (
                    first_without
                ),
                "first_answer_speedup": first_without
                / max(first_with, 1e-9),
                "probe_requests_with_records": probes_with,
                "probe_requests_without_records": probes_without,
            },
        }
    return best


def run_sharded_benchmark(repeat: int, small: bool = False) -> dict:
    """The serve-sharded scaling workload (docs/serving.md).

    Measures what hash-partitioned multi-process serving buys on
    *partitioned* work: durable fact ingest, where every inserted
    fact costs real per-fact work on exactly one shard.  Because the
    suite runs on small CI machines (often one core), the per-fact
    cost is modelled with an injected ``delay:relation.inserts``
    fault inside the worker processes -- sleeps overlap across
    processes the way I/O- or solver-bound work would, so the scaling
    signal is about the *partitioning* (each shard inserts only its
    1/N share, concurrently), not about how many cores the runner
    happens to have.  Loads are durable (per-shard WALs under a
    temporary directory) and a sample of shard-key-bound queries
    verifies the routed data answers correctly -- with the scatter
    pruned to the owner shard.

    The cluster runs with its full supervision stack on -- reader
    threads, deadline-bounded ops, and a live 0.5s heartbeat -- so the
    scaling numbers carry the liveness machinery's overhead.  A
    dedicated pass re-times the 2-shard ingest with the heartbeat
    disabled and reports the ratio (``heartbeat.overhead_ratio``);
    CI asserts it stays within noise of 1.0.
    """
    import shutil
    import tempfile

    from repro.shard import ShardedEngine

    program = "\n".join(
        [
            "reach(X, Y) :- edge(X, Y, C).",
            "reach(X, Z) :- reach(X, Y), edge(Y, Z, C).",
            # Enough baked facts that the planner keeps ``edge``
            # hash-partitioned rather than demoting it to broadcast
            # as a small relation.
            *(
                f"edge(seed{index}, seed{index + 1}, 1)."
                for index in range(8)
            ),
        ]
    )
    shard_counts = (1, 2, 4) if small else (1, 2, 4, 8)
    n_facts = 64 if small else 240
    batch_size = 16 if small else 60
    fault_spec = (
        "delay:relation.inserts:0.003; delay:fs.write.wal:0.001"
    )
    lines = [
        f"edge(s{index}, t{index}, 1)." for index in range(n_facts)
    ]
    batches = [
        "\n".join(lines[index:index + batch_size])
        for index in range(0, len(lines), batch_size)
    ]
    probe = [0, n_facts // 2, n_facts - 1]

    ingest: dict[str, float] = {}
    pruned_query: dict[str, float] = {}
    balance: dict[str, dict] = {}
    for shards in shard_counts:
        best_elapsed = None
        for __ in range(repeat):
            base = tempfile.mkdtemp(prefix="repro-shard-bench-")
            engine = ShardedEngine.from_text(
                program,
                shards,
                snapshot_dir=base,
                snapshot_every=1000,
                faults=fault_spec,
                heartbeat_interval=0.5,
            )
            try:
                engine.coordinator.start()
                engine.coordinator.recover()
                started = time.perf_counter()
                for batch in batches:
                    response = engine.add_facts(batch)
                    assert response.ok, response.error_message
                elapsed = time.perf_counter() - started
                probe_started = time.perf_counter()
                for index in probe:
                    response = engine.session.query(
                        parse_query(f"?- edge(s{index}, T, C).")
                    )
                    assert response.ok, response.error_message
                    answers = sorted(response.answer_strings)
                    assert len(answers) == 1 and (
                        f"t{index}" in answers[0]
                    ), answers
                probe_elapsed = (
                    time.perf_counter() - probe_started
                ) / len(probe)
                health = engine.coordinator.healthz()
                counts = [
                    entry["edb_facts"]
                    for entry in health["shards"]
                ]
            finally:
                engine.coordinator.close(drain=False)
                shutil.rmtree(base, ignore_errors=True)
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed = elapsed
                ingest[str(shards)] = elapsed
                pruned_query[str(shards)] = probe_elapsed
                balance[str(shards)] = {
                    "max_shard_facts": max(counts),
                    "min_shard_facts": min(counts),
                    "ideal_per_shard": (n_facts + 8) / shards,
                }
    baseline = ingest[str(shard_counts[0])]
    speedup = {
        key: baseline / max(seconds, 1e-9)
        for key, seconds in ingest.items()
        if key != str(shard_counts[0])
    }

    def timed_ingest(heartbeat: float) -> float:
        """Best-of-``repeat`` 2-shard ingest at one heartbeat setting."""
        best = None
        for __ in range(repeat):
            base = tempfile.mkdtemp(prefix="repro-shard-bench-")
            engine = ShardedEngine.from_text(
                program,
                2,
                snapshot_dir=base,
                snapshot_every=1000,
                faults=fault_spec,
                heartbeat_interval=heartbeat,
            )
            try:
                engine.coordinator.start()
                engine.coordinator.recover()
                started = time.perf_counter()
                for batch in batches:
                    response = engine.add_facts(batch)
                    assert response.ok, response.error_message
                elapsed = time.perf_counter() - started
            finally:
                engine.coordinator.close(drain=False)
                shutil.rmtree(base, ignore_errors=True)
            if best is None or elapsed < best:
                best = elapsed
        return best

    with_heartbeat = timed_ingest(0.5)
    without_heartbeat = timed_ingest(0.0)
    return {
        "name": "serve-sharded",
        "strategy": "rewrite",
        "seconds": ingest[str(shard_counts[-1])],
        "sharded": {
            "facts_loaded": n_facts,
            "batch_size": batch_size,
            "fault_spec": fault_spec,
            "shard_counts": list(shard_counts),
            "ingest_seconds": ingest,
            "ingest_speedup_vs_1": speedup,
            "pruned_query_mean_seconds": pruned_query,
            "balance": balance,
            "heartbeat": {
                "interval_seconds": 0.5,
                "ingest_seconds_with": with_heartbeat,
                "ingest_seconds_without": without_heartbeat,
                "overhead_ratio": with_heartbeat
                / max(without_heartbeat, 1e-9),
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    """Run the suite and write the results JSON."""
    parser = argparse.ArgumentParser(
        description="Run the repro benchmark suite and write "
        "machine-readable results."
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_results.json",
        help="output path (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measurements per benchmark; the best is kept (default 3)",
    )
    parser.add_argument(
        "--only",
        help="comma-separated benchmark names to run (default: all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: repeat=1, a reduced driver subset, and a "
        "small service workload",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        arguments.repeat = 1
        if not arguments.only:
            arguments.only = (
                "example41,fib,constraint-ops,service,planner,"
                "serve,recover"
            )
    selected = (
        set(arguments.only.split(",")) if arguments.only else None
    )
    results = []
    for bench in SUITE:
        if selected is not None and bench.name not in selected:
            continue
        print(
            f"running {bench.name} [{bench.strategy}] ...",
            file=sys.stderr,
        )
        results.append(run_benchmark(bench, arguments.repeat))
    if selected is None or "constraint-ops" in selected:
        print("running constraint-ops [none] ...", file=sys.stderr)
        results.append(
            run_constraint_ops_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    if selected is None or "service" in selected:
        print("running service-repeat [rewrite] ...", file=sys.stderr)
        results.append(
            run_service_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    if selected is None or "planner" in selected:
        print(
            "running planner-adaptation [auto] ...", file=sys.stderr
        )
        results.append(
            run_planner_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    if selected is None or "serve" in selected:
        print(
            "running serve-concurrent [rewrite] ...", file=sys.stderr
        )
        results.append(
            run_serve_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    if selected is None or "recover" in selected:
        print(
            "running recover-cold [auto] ...", file=sys.stderr
        )
        results.append(
            run_recover_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    if selected is None or "serve-sharded" in selected:
        print(
            "running serve-sharded [rewrite] ...", file=sys.stderr
        )
        results.append(
            run_sharded_benchmark(
                arguments.repeat, small=arguments.smoke
            )
        )
    document = {
        "schema": SCHEMA,
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": arguments.repeat,
        "results": results,
    }
    with open(arguments.output, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    print(
        f"wrote {len(results)} results to {arguments.output}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
