"""Ablation: constraint magic vs. plain magic (Example 1.1's choice).

Example 1.1 presents the dilemma: put constraints into magic rules (and
compute constraint facts), or drop them (and compute irrelevant facts).
The paper's resolution is to propagate constraints *first*; this
ablation quantifies the dilemma on Example 7.2's program, where
constraint magic's extra ``X <= 4`` in the magic rules pays off.
"""

from repro.core.pipeline import apply_sequence, evaluate_pipeline
from repro.engine import Database
from repro.lang.parser import parse_query

from benchmarks.conftest import record_rows


def test_constraint_magic_vs_plain(benchmark, example_72_program):
    query = parse_query("?- q(7, Y).")
    edb = Database.from_ground(
        {
            "b1": [(7, 100), (2, 0)],
            "b2": [(100 + i, 101 + i) for i in range(12)] + [(0, 1)],
        }
    )

    def run():
        with_constraints = evaluate_pipeline(
            apply_sequence(
                example_72_program, query, ["mg"],
                include_constraints=True,
            ),
            edb,
            query,
        )
        without = evaluate_pipeline(
            apply_sequence(
                example_72_program, query, ["mg"],
                include_constraints=False,
            ),
            edb,
            query,
        )
        return with_constraints, without

    with_constraints, without = benchmark(run)
    rows = [
        {
            "constraint_magic_facts": with_constraints.facts_excluding_edb(
                edb
            ),
            "plain_magic_facts": without.facts_excluding_edb(edb),
        }
    ]
    record_rows(benchmark, rows)
    # The constraints in the magic rules prune the b2 chain entirely.
    assert (
        with_constraints.facts_excluding_edb(edb)
        < without.facts_excluding_edb(edb)
    )


def test_both_variants_ground_and_equivalent(
    benchmark, example_72_program
):
    from repro.core.pipeline import query_answers

    query = parse_query("?- q(3, Y).")
    edb = Database.from_ground(
        {
            "b1": [(3, 100), (2, 0)],
            "b2": [(100, 101), (101, 102), (0, 1)],
        }
    )

    def run():
        return [
            evaluate_pipeline(
                apply_sequence(
                    example_72_program, query, ["mg"],
                    include_constraints=flag,
                ),
                edb,
                query,
            )
            for flag in (True, False)
        ]

    evaluations = benchmark(run)
    answers = {
        frozenset(query_answers(evaluation, query))
        for evaluation in evaluations
    }
    assert len(answers) == 1
    for evaluation in evaluations:
        assert all(
            fact.is_ground()
            for fact in evaluation.result.database.all_facts()
        )
