"""Ablation: semi-naive vs. naive fixpoint evaluation.

Not a paper table, but the substrate choice every result sits on: the
tables count *semi-naive* derivations.  Naive evaluation re-derives the
whole relation every iteration; the derivation-count ratio grows with
the fixpoint depth.
"""

import pytest

from repro.engine import Database, naive_evaluate, seminaive_evaluate
from repro.lang.parser import parse_program
from repro.workloads.graphs import chain_edges

from benchmarks.conftest import record_rows


TC = parse_program(
    """
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
    """
)


@pytest.mark.parametrize("length", [8, 16, 32])
def test_seminaive_vs_naive(benchmark, length):
    edb = Database.from_ground({"edge": chain_edges(length)})

    def run():
        semi = seminaive_evaluate(TC, edb, max_iterations=length + 5)
        naive = naive_evaluate(TC, edb, max_iterations=length + 5)
        return semi, naive

    semi, naive = benchmark(run)
    record_rows(
        benchmark,
        [
            {
                "chain": length,
                "seminaive_derivations": semi.stats.derivations,
                "naive_derivations": naive.stats.derivations,
                "ratio": round(
                    naive.stats.derivations / semi.stats.derivations, 2
                ),
            }
        ],
    )
    assert set(semi.facts("tc")) == set(naive.facts("tc"))
    assert semi.stats.derivations < naive.stats.derivations


def test_ratio_grows_with_depth(benchmark):
    def run():
        ratios = []
        for length in (4, 8, 16):
            edb = Database.from_ground({"edge": chain_edges(length)})
            semi = seminaive_evaluate(TC, edb, max_iterations=40)
            naive = naive_evaluate(TC, edb, max_iterations=40)
            ratios.append(
                naive.stats.derivations / semi.stats.derivations
            )
        return ratios

    ratios = benchmark(run)
    assert ratios == sorted(ratios)
