"""Table 1: derivations of ``P_fib^{mg}`` -- answers but never terminates.

Regenerates the per-iteration derivation rows of Table 1 and checks
their characteristic shape: the seed at iteration 0, the weakened
constraint fact ``m_fib(N1, V1; N1 > 0)`` at iteration 1, the answer
``fib(4, 5)`` at iteration 7, and *no fixpoint* within the cap.
"""

from repro.engine import evaluate
from repro.workloads.fib import fib_magic_program

from benchmarks.conftest import record_rows


def run_table1():
    magic = fib_magic_program(5, optimized=False)
    return evaluate(magic.program, max_iterations=9)


def test_table1_regeneration(benchmark):
    result = benchmark(run_table1)
    assert not result.reached_fixpoint
    rows = [
        {
            "iteration": log.number,
            "derivations": [str(d) for d in log.derivations],
        }
        for log in result.iterations
    ]
    record_rows(benchmark, rows)
    # Shape checks against the paper's table.
    assert "m_fib($1, 5)" in rows[0]["derivations"][0]
    assert "$1 > 0" in rows[1]["derivations"][0]
    assert any("fib(4, 5)" in d for d in rows[7]["derivations"])
    assert any("fib(5, 8)" in d for d in rows[8]["derivations"])


def test_table1_answer_despite_divergence(benchmark):
    def answered():
        result = run_table1()
        return {
            fact.args
            for fact in result.facts("fib")
            if fact.args[1] == 5
        }

    answers = benchmark(answered)
    assert answers == {(4, 5)}
