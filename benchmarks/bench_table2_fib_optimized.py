"""Table 2: ``P_fib^{mg}_1`` -- predicate constraints make it terminate.

The same query after ``Gen_Prop_predicate_constraints`` pushes
``$2 >= 1`` into the recursive rule: the evaluation terminates right
after producing the answer, with the bounded magic constraints the
paper prints (``V1 >= 1, V1 <= 4`` etc.).
"""

from repro.engine import evaluate
from repro.workloads.fib import fib_magic_program

from benchmarks.conftest import record_rows


def run_table2():
    magic = fib_magic_program(5, optimized=True)
    return evaluate(magic.program, max_iterations=30)


def test_table2_regeneration(benchmark):
    result = benchmark(run_table2)
    assert result.reached_fixpoint
    assert result.stats.iterations <= 10
    rows = [
        {
            "iteration": log.number,
            "derivations": [str(d) for d in log.derivations],
        }
        for log in result.iterations
    ]
    record_rows(benchmark, rows)
    assert "$2 >= 1 & $2 <= 4" in rows[1]["derivations"][0]
    assert any("fib(4, 5)" in d for d in rows[7]["derivations"])
    # No fib fact beyond the answer (contrast with Table 1's fib(5,8)).
    assert all("fib(5" not in d for row in rows for d in row["derivations"])


def test_table2_no_answer_query_terminates(benchmark):
    def run():
        magic = fib_magic_program(6, optimized=True)
        return evaluate(magic.program, max_iterations=40)

    result = benchmark(run)
    assert result.reached_fixpoint
    assert not any(fact.args[1] == 6 for fact in result.facts("fib"))


def test_rewrite_cost_itself(benchmark):
    """How long the transformation (not the evaluation) takes."""
    from repro.workloads.fib import (
        fib_predicate_constraint,
        fib_program,
    )
    from repro.core.predconstraints import gen_prop_predicate_constraints

    def transform():
        return gen_prop_predicate_constraints(
            fib_program(), given={"fib": fib_predicate_constraint()}
        )

    program, constraints, __ = benchmark(transform)
    assert "fib" in constraints
