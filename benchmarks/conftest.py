"""Shared benchmark fixtures and the paper-row reporting helper.

Every benchmark regenerates one of the paper's tables/figures/examples.
Absolute timings are machine-dependent; the *shape* assertions (who
computes fewer facts, what terminates, where the crossover falls) are
checked inside the benchmarks themselves, and each benchmark attaches
the regenerated rows to ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only`` output carries them.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.lang.parser import parse_program, parse_query


@pytest.fixture(scope="session")
def flights_program():
    from repro.workloads.flights import flights_program as build

    return build()


@pytest.fixture(scope="session")
def example_41_program():
    return parse_program(
        """
        q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
        p1(X, Y) :- b1(X, Y).
        p2(X) :- b2(X).
        """
    ).relabeled()


@pytest.fixture(scope="session")
def example_51_program():
    return parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10, Y <= X.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
        """
    ).relabeled()


@pytest.fixture(scope="session")
def example_71_program():
    return parse_program(
        """
        q(X, Y) :- a1(X, Y), X <= 4.
        a1(X, Y) :- b1(X, Z), a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """
    ).relabeled()


@pytest.fixture(scope="session")
def example_72_program():
    return parse_program(
        """
        q(X, Y) :- a1(X, Y).
        a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
        a2(X, Y) :- b2(X, Y).
        a2(X, Y) :- b2(X, Z), a2(Z, Y).
        """
    ).relabeled()


@pytest.fixture(scope="session")
def graph_edb_71():
    """A b1/b2 EDB where the X <= 4 selection is strongly selective."""
    b1 = [(9, 100), (8, 200), (1, 0), (3, 300)]
    chain = [(100 + i, 101 + i) for i in range(12)]
    chain += [(200 + i, 201 + i) for i in range(12)]
    chain += [(0, 1), (1, 2), (300, 301)]
    return Database.from_ground({"b1": b1, "b2": chain})


_COLLECTED_ROWS: dict[str, list[dict]] = {}


def record_rows(benchmark, rows: list[dict]) -> None:
    """Attach regenerated table rows to the benchmark report.

    The rows also land in the terminal summary, so running
    ``pytest benchmarks/ --benchmark-only`` prints the regenerated
    paper tables alongside the timings.
    """
    benchmark.extra_info["rows"] = rows
    name = getattr(benchmark, "name", None) or "benchmark"
    _COLLECTED_ROWS[name] = rows


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTED_ROWS:
        return
    write = terminalreporter.write_line
    terminalreporter.section("regenerated paper rows")
    for name in sorted(_COLLECTED_ROWS):
        write(f"{name}:")
        for row in _COLLECTED_ROWS[name]:
            if "derivations" in row and isinstance(
                row.get("derivations"), list
            ):
                write(f"  iteration {row.get('iteration')}:")
                for entry in row["derivations"]:
                    write(f"    {entry}")
            else:
                rendered = ", ".join(
                    f"{key}={value}" for key, value in row.items()
                )
                write(f"  {rendered}")
