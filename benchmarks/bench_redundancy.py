"""Theorems 7.4-7.6/7.9: repeated rewritings are redundant.

Besides the semantic equality (tested in the integration suite), this
benchmark shows the *cost* argument: applying pred/qrp twice pays twice
the transformation cost for an identical program.
"""

from repro.core.pipeline import apply_sequence, evaluate_pipeline
from repro.engine import Database
from repro.lang.parser import parse_query

from benchmarks.conftest import record_rows


def totals(program, query, edb, sequence):
    pipeline = apply_sequence(program, query, sequence)
    evaluation = evaluate_pipeline(pipeline, edb, query)
    return evaluation.facts_excluding_edb(edb)


def test_single_vs_double_qrp(
    benchmark, example_71_program, graph_edb_71
):
    query = parse_query("?- q(X, Y).")

    def run():
        once = totals(example_71_program, query, graph_edb_71, ["qrp"])
        twice = totals(
            example_71_program, query, graph_edb_71, ["qrp", "qrp"]
        )
        return once, twice

    once, twice = benchmark(run)
    record_rows(benchmark, [{"qrp": once, "qrp,qrp": twice}])
    assert once == twice


def test_full_alternation_vs_minimal(
    benchmark, example_71_program, graph_edb_71
):
    query = parse_query("?- q(X, Y).")

    def run():
        minimal = totals(
            example_71_program, query, graph_edb_71,
            ["pred", "qrp", "mg"],
        )
        padded = totals(
            example_71_program, query, graph_edb_71,
            ["pred", "qrp", "pred", "qrp", "pred", "mg"],
        )
        return minimal, padded

    minimal, padded = benchmark(run)
    record_rows(
        benchmark,
        [{"pred,qrp,mg": minimal, "padded sequence": padded}],
    )
    assert minimal == padded
