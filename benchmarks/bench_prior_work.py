"""Figures 1/2: prior pipelines vs. this paper's, on equal substrates.

Balbin et al.'s pipeline (Figure 1) = C transform + magic; ours =
``Constraint_rewrite`` + constraint magic.  The shape claim (Section
4.1): there are programs ours optimizes that the C transform cannot --
quantified here on Example 4.1 with growing EDBs.
"""

import random

import pytest

from repro.core.baselines import c_transform
from repro.core.qrp import gen_prop_qrp_constraints
from repro.engine import Database, evaluate
from repro.lang.parser import parse_query
from repro.magic.templates import magic_rewrite

from benchmarks.conftest import record_rows


def make_edb(size: int, seed: int) -> Database:
    rng = random.Random(seed)
    b1 = {(rng.randint(0, 9), rng.randint(0, 9)) for __ in range(size)}
    b2 = {(rng.randint(0, 9),) for __ in range(size)}
    return Database.from_ground({"b1": b1, "b2": b2})


@pytest.mark.parametrize("size", [20, 80])
def test_balbin_vs_ours_full_pipelines(
    benchmark, example_41_program, size
):
    query = parse_query("?- q(X).")
    edb = make_edb(size, seed=size + 1)

    def run():
        balbin = evaluate(
            magic_rewrite(
                c_transform(example_41_program, "q").program, query
            ).program,
            edb,
        )
        ours = evaluate(
            magic_rewrite(
                gen_prop_qrp_constraints(
                    example_41_program, "q"
                ).program,
                query,
            ).program,
            edb,
        )
        return balbin, ours

    balbin, ours = benchmark(run)
    rows = [
        {
            "size": size,
            "balbin_facts": balbin.count() - edb.count(),
            "ours_facts": ours.count() - edb.count(),
        }
    ]
    record_rows(benchmark, rows)
    assert ours.count() <= balbin.count()
    assert {fact.args for fact in ours.facts("q_f")} == {
        fact.args for fact in balbin.facts("q_f")
    }


def test_transformation_costs(benchmark, example_41_program):
    """Compile-time comparison of the two propagation procedures."""

    def run():
        c_transform(example_41_program, "q")
        gen_prop_qrp_constraints(example_41_program, "q")

    benchmark(run)
