"""Example 4.1 plus the Section 4.1/6.1 baseline comparison.

Three programs over the same EDBs: the original, Balbin et al.'s
C-transformed version (syntactic propagation), and ours (semantic
propagation).  Shape: original >= Balbin >= ours in facts computed,
with ours strictly better on p2 whenever b2 contains values above 4.
"""

import random

import pytest

from repro.core.baselines import c_transform
from repro.core.qrp import gen_prop_qrp_constraints
from repro.engine import Database, evaluate

from benchmarks.conftest import record_rows


@pytest.fixture(scope="module")
def programs(example_41_program):
    return {
        "original": example_41_program,
        "balbin": c_transform(example_41_program, "q").program,
        "semantic": gen_prop_qrp_constraints(
            example_41_program, "q"
        ).program,
    }


def make_edb(size: int, seed: int) -> Database:
    rng = random.Random(seed)
    b1 = {
        (rng.randint(0, 9), rng.randint(0, 9)) for __ in range(size)
    }
    b2 = {(rng.randint(0, 9),) for __ in range(size)}
    return Database.from_ground({"b1": b1, "b2": b2})


@pytest.mark.parametrize("size", [10, 40, 160])
def test_example41_three_way(benchmark, programs, size):
    edb = make_edb(size, seed=size)

    def run():
        return {
            name: evaluate(program, edb)
            for name, program in programs.items()
        }

    results = benchmark(run)
    counts = {
        name: result.count() - edb.count()
        for name, result in results.items()
    }
    record_rows(benchmark, [{"size": size, **counts}])
    q_facts = {
        name: set(result.facts("q")) for name, result in results.items()
    }
    assert q_facts["original"] == q_facts["balbin"] == q_facts["semantic"]
    assert counts["semantic"] <= counts["balbin"] <= counts["original"]
    assert results["semantic"].count("p2") <= results["balbin"].count(
        "p2"
    )


def test_qrp_generation_cost(benchmark, example_41_program):
    from repro.core.qrp import gen_qrp_constraints

    constraints, report = benchmark(
        lambda: gen_qrp_constraints(example_41_program, "q")
    )
    assert report.converged
