"""Theorem 7.10: ``P^{pred,qrp,mg}`` is optimal (one-mg sequences).

Enumerates all sensible sequences on both non-confluence programs and
on a third program with nontrivial predicate constraints, asserting the
prescribed order always matches the minimum fact count.
"""

import pytest

from repro.core.pipeline import apply_sequence, evaluate_pipeline
from repro.engine import Database
from repro.lang.parser import parse_program, parse_query

from benchmarks.conftest import record_rows


SEQUENCES = [
    ("mg",),
    ("pred", "mg"),
    ("qrp", "mg"),
    ("mg", "qrp"),
    ("mg", "pred"),
    ("pred", "qrp", "mg"),
    ("qrp", "pred", "mg"),
    ("pred", "mg", "qrp"),
    ("mg", "pred", "qrp"),
    ("qrp", "mg", "pred"),
]


def sweep(program, query, edb):
    totals = {}
    for sequence in SEQUENCES:
        pipeline = apply_sequence(program, query, list(sequence))
        evaluation = evaluate_pipeline(pipeline, edb, query)
        totals[",".join(sequence)] = evaluation.facts_excluding_edb(edb)
    return totals


def check_optimal(benchmark, program, query, edb):
    totals = benchmark(lambda: sweep(program, query, edb))
    record_rows(benchmark, [totals])
    assert totals["pred,qrp,mg"] == min(totals.values())
    return totals


def test_optimal_on_example_71(
    benchmark, example_71_program, graph_edb_71
):
    check_optimal(
        benchmark, example_71_program, parse_query("?- q(X, Y)."),
        graph_edb_71,
    )


def test_optimal_on_example_72(benchmark, example_72_program):
    edb = Database.from_ground(
        {
            "b1": [(7, 100), (2, 0)],
            "b2": [(100 + i, 101 + i) for i in range(8)] + [(0, 1)],
        }
    )
    check_optimal(
        benchmark, example_72_program, parse_query("?- q(7, Y)."), edb
    )


def test_optimal_with_predicate_constraints(benchmark):
    # Example 4.2-style program: pred constraints matter here, so
    # sequences without "pred" are strictly worse.
    program = parse_program(
        """
        q(X, Y) :- a(X, Y), X <= 10.
        a(X, Y) :- p(X, Y), Y <= X.
        a(X, Y) :- a(X, Z), a(Z, Y).
        """
    )
    edb = Database.from_ground(
        {
            "p": [
                (5, 3), (3, 1), (20, 7), (30, 20), (9, 5),
                (15, 2), (1, 0), (7, 6), (6, 2),
            ]
        }
    )
    totals = check_optimal(
        benchmark, program, parse_query("?- q(X, Y)."), edb
    )
    assert totals["pred,qrp,mg"] <= totals["qrp,mg"]
